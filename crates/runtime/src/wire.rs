//! Framed wire protocol for the multi-process TCP transport.
//!
//! Everything a worker process exchanges with its coordinator travels as
//! length-prefixed frames:
//!
//! ```text
//! frame   := len:u32le  kind:u8  body[len-1]
//! ```
//!
//! `len` counts the kind byte plus the body, so an empty-bodied frame has
//! `len == 1`. A length above [`MAX_FRAME`] is rejected before any
//! allocation — a garbage prefix (or a peer speaking a different
//! protocol) costs a typed error, not an OOM.
//!
//! Frame kinds:
//!
//! | kind | name     | direction | body                                   |
//! |------|----------|-----------|----------------------------------------|
//! | 0    | Hello    | w → c     | `index uv, incarnation uv`             |
//! | 1    | Job      | c → w     | epoch, fleet size, worker config, symbol table, spec |
//! | 2    | Envelope | both      | `dest uv` then the serialized envelope |
//! | 3    | Result   | w → c     | [`WorkerReport`] + pooled relations    |
//! | 4    | Error    | w → c     | `fatal u8, message utf8`               |
//! | 5    | Ping     | c → w     | `nonce uv`                             |
//! | 6    | Pong     | w → c     | `nonce uv`                             |
//! | 7    | Shutdown | c → w     | empty                                  |
//!
//! The `Envelope` body leads with the *destination* processor. The
//! coordinator relays worker-to-worker traffic by validating the whole
//! envelope (a structurally complete frame can still carry a corrupt
//! body — the garbage fault cuts exactly that shape, and corruption must
//! be charged to the *sender's* link) and then forwarding the original
//! frame bytes verbatim — validate, never re-encode.
//!
//! Scalars are the codec's LEB128 varints ([`crate::codec`]); tuple data
//! reuses [`crate::codec::encode_batch`] so batches cross the process
//! boundary in the same columnar format they cross thread boundaries in.
//! Every decode path shares the codec's never-panic contract: truncated,
//! corrupt, or adversarial bytes yield a typed [`Error::Runtime`] (see
//! the fuzz sweep in this module's tests).

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use gst_common::{Error, Interner, Result, SymbolId, Tuple};
use gst_eval::plan::RelationId;
use gst_eval::{EvalStats, RoundSample};
use gst_frontend::ast::{
    Atom, ConstraintRef, Literal, Program, Rule, Term, Variable,
};
use gst_storage::{Database, Relation};

use crate::codec::{self, put_bytes, put_uv, put_sv, Cursor};
use crate::message::{Envelope, Message, Payload};
use crate::spec::{ChannelOut, ProcessorProgram, SessionSeed, WorkerSpec};
use crate::stats::WorkerReport;
use crate::termination::{Color, TokenMsg};
use crate::worker::{PooledRelations, WorkerConfig};

/// Upper bound on a frame's declared length (256 MiB). A length prefix
/// beyond this is treated as corruption before any buffer is allocated.
pub(crate) const MAX_FRAME: u32 = 1 << 28;

/// Worker → coordinator: identify yourself after connecting.
pub(crate) const FRAME_HELLO: u8 = 0;
/// Coordinator → worker: the job to run (spec, config, symbols).
pub(crate) const FRAME_JOB: u8 = 1;
/// Either direction: a routed worker-to-worker [`Envelope`].
pub(crate) const FRAME_ENVELOPE: u8 = 2;
/// Worker → coordinator: terminated cleanly; report + pooled relations.
pub(crate) const FRAME_RESULT: u8 = 3;
/// Worker → coordinator: a typed error (fatal or recoverable).
pub(crate) const FRAME_ERROR: u8 = 4;
/// Coordinator → worker: heartbeat probe.
pub(crate) const FRAME_PING: u8 = 5;
/// Worker → coordinator: heartbeat reply (echoes the nonce).
pub(crate) const FRAME_PONG: u8 = 6;
/// Coordinator → worker: tear down and exit cleanly.
pub(crate) const FRAME_SHUTDOWN: u8 = 7;

/// A decoder for constraint literals shipped inside a [`FRAME_JOB`].
///
/// The runtime cannot depend on `gst-core` (where the discriminating
/// functions live), so whoever launches a net worker injects the decoder
/// — typically `gst_core::prelude::decode_constraint`.
pub(crate) type ConstraintDecode<'a> =
    Option<&'a (dyn Fn(&[u8]) -> Result<ConstraintRef> + Send + Sync)>;

fn corrupt(what: &str) -> Error {
    Error::Runtime(format!("corrupt frame: {what}"))
}

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

/// Write one frame. Failures are I/O failures (the peer is gone).
pub(crate) fn write_frame(w: &mut dyn Write, kind: u8, body: &[u8]) -> Result<()> {
    if body.len() as u64 + 1 > u64::from(MAX_FRAME) {
        return Err(Error::Runtime(format!(
            "frame too large to send: {} bytes",
            body.len()
        )));
    }
    let len = body.len() as u32 + 1;
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&len.to_le_bytes());
    head[4] = kind;
    w.write_all(&head)
        .and_then(|()| w.write_all(body))
        .and_then(|()| w.flush())
        .map_err(|e| Error::Runtime(format!("link write failed: {e}")))
}

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary (the
/// peer closed deliberately); EOF inside a frame, an oversized length
/// prefix, or any I/O error (including a read timeout) is an `Err`.
pub(crate) fn read_frame(r: &mut dyn Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut head = [0u8; 5];
    let mut got = 0;
    // The header is assembled byte by byte so a split read (TCP hands
    // back whatever is buffered) never loses data, and an EOF before the
    // first byte is distinguishable as a deliberate close.
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(corrupt("EOF inside frame header")),
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Runtime(format!("link read failed: {e}"))),
        }
        if got >= 4 {
            let len = u32::from_le_bytes(head[..4].try_into().expect("four bytes"));
            if len == 0 {
                return Err(corrupt("zero-length frame"));
            }
            if len > MAX_FRAME {
                return Err(corrupt(&format!("implausible frame length {len}")));
            }
        }
    }
    let len = u32::from_le_bytes(head[..4].try_into().expect("four bytes"));
    let kind = head[4];
    let mut body = vec![0u8; len as usize - 1];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt("EOF inside frame body")
        } else {
            Error::Runtime(format!("link read failed: {e}"))
        }
    })?;
    Ok(Some((kind, body)))
}

// ---------------------------------------------------------------------
// Shared decode helpers
// ---------------------------------------------------------------------

/// Read a count that prefixes a list whose elements occupy at least one
/// byte each: anything larger than the remaining bytes is corruption,
/// which also bounds allocations by the (already bounded) frame size.
fn get_count(c: &mut Cursor, what: &str) -> Result<usize> {
    let n = c.get_uv().ok_or_else(|| corrupt(what))?;
    if n > c.remaining() as u64 {
        return Err(corrupt(&format!("implausible {what} count {n}")));
    }
    Ok(n as usize)
}

fn get_usize(c: &mut Cursor, what: &str) -> Result<usize> {
    let v = c.get_uv().ok_or_else(|| corrupt(what))?;
    usize::try_from(v).map_err(|_| corrupt(what))
}

fn get_symbol(c: &mut Cursor, interner: &Interner, what: &str) -> Result<SymbolId> {
    let idx = c.get_uv().ok_or_else(|| corrupt(what))?;
    if idx >= interner.len() as u64 {
        return Err(corrupt(&format!("{what}: symbol {idx} outside table")));
    }
    Ok(SymbolId(idx as u32))
}

fn put_relation_id(buf: &mut Vec<u8>, id: RelationId) {
    put_uv(buf, u64::from(id.0 .0));
    put_uv(buf, id.1 as u64);
}

fn get_relation_id(c: &mut Cursor, interner: &Interner) -> Result<RelationId> {
    let sym = get_symbol(c, interner, "relation id")?;
    let arity = get_usize(c, "relation arity")?;
    if arity > codec::IMPLAUSIBLE {
        return Err(corrupt(&format!("implausible relation arity {arity}")));
    }
    Ok((sym, arity))
}

/// Encode a relation's live tuples as one columnar batch (sorted, so the
/// encoding is deterministic across runs and processes).
fn put_relation_tuples(buf: &mut Vec<u8>, arity: usize, rel: &Relation) -> Result<()> {
    let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
    tuples.sort();
    put_bytes(buf, &codec::encode_batch(arity, &tuples)?);
    Ok(())
}

fn get_relation_tuples(c: &mut Cursor, arity: usize) -> Result<Relation> {
    let bytes = c.get_bytes().ok_or_else(|| corrupt("relation payload"))?;
    let tuples = codec::decode_batch(bytes)?;
    let mut rel = Relation::with_capacity(arity, tuples.len());
    for t in tuples {
        rel.insert(t)?;
    }
    Ok(rel)
}

// ---------------------------------------------------------------------
// Hello / Error / heartbeat bodies
// ---------------------------------------------------------------------

pub(crate) fn encode_hello(index: usize, incarnation: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    put_uv(&mut buf, index as u64);
    put_uv(&mut buf, incarnation);
    buf
}

pub(crate) fn decode_hello(bytes: &[u8]) -> Result<(usize, u64)> {
    let mut c = Cursor::new(bytes);
    let index = get_usize(&mut c, "hello index")?;
    let incarnation = c.get_uv().ok_or_else(|| corrupt("hello incarnation"))?;
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after hello"));
    }
    Ok((index, incarnation))
}

pub(crate) fn encode_error(fatal: bool, message: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(message.len() + 2);
    buf.push(u8::from(fatal));
    put_bytes(&mut buf, message.as_bytes());
    buf
}

pub(crate) fn decode_error(bytes: &[u8]) -> Result<(bool, String)> {
    let mut c = Cursor::new(bytes);
    let fatal = match c.get_u8().ok_or_else(|| corrupt("error flag"))? {
        0 => false,
        1 => true,
        other => return Err(corrupt(&format!("unknown error flag {other}"))),
    };
    let msg = c.get_bytes().ok_or_else(|| corrupt("error message"))?;
    let msg = std::str::from_utf8(msg).map_err(|_| corrupt("error message utf8"))?;
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after error"));
    }
    Ok((fatal, msg.to_string()))
}

pub(crate) fn encode_nonce(nonce: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10);
    put_uv(&mut buf, nonce);
    buf
}

pub(crate) fn decode_nonce(bytes: &[u8]) -> Result<u64> {
    let mut c = Cursor::new(bytes);
    let nonce = c.get_uv().ok_or_else(|| corrupt("nonce"))?;
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after nonce"));
    }
    Ok(nonce)
}

// ---------------------------------------------------------------------
// Job frames
// ---------------------------------------------------------------------

/// A decoded [`FRAME_JOB`]: everything a fresh worker process needs.
pub(crate) struct JobFrame {
    /// Recovery epoch this incarnation starts in.
    pub(crate) epoch: u64,
    /// Fleet size.
    pub(crate) n: usize,
    /// Per-worker runtime knobs.
    pub(crate) worker: WorkerConfig,
    /// What to run (program, routing, EDB, optional session seed).
    pub(crate) spec: WorkerSpec,
    /// A pending `Recover` the incarnation must absorb before its first
    /// engine step. Embedding it in the job (rather than sending it as a
    /// separate envelope frame) removes the race between the reader
    /// thread delivering it and the main loop stepping: a replacement
    /// that fires a batch before absorbing `Recover` has that send
    /// erased when `on_recover` zeroes its Safra counter, leaving the
    /// termination ring permanently unbalanced.
    pub(crate) recover: Option<Envelope>,
}

pub(crate) fn encode_job(
    epoch: u64,
    n: usize,
    worker: &WorkerConfig,
    spec: &WorkerSpec,
    recover: Option<&Envelope>,
) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(1024);
    put_uv(&mut buf, epoch);
    put_uv(&mut buf, n as u64);
    put_uv(&mut buf, worker.idle_poll.as_micros() as u64);
    put_uv(&mut buf, worker.idle_watchdog.as_micros() as u64);
    buf.push(u8::from(worker.pool_results));
    put_uv(&mut buf, worker.morsel_threads as u64);
    buf.push(u8::from(worker.profile));

    // Symbol table: the entire interner, ids 0..len in order. The worker
    // re-interns into a fresh table and every SymbolId below resolves to
    // the same string on both sides.
    let interner = &spec.program.program.interner;
    put_uv(&mut buf, interner.len() as u64);
    for idx in 0..interner.len() {
        put_bytes(&mut buf, interner.resolve(SymbolId(idx as u32)).as_bytes());
    }

    put_processor_program(&mut buf, &spec.program)?;

    // EDB: live tuples per relation, deterministic relation order.
    let mut rels: Vec<(&RelationId, &Relation)> = spec.edb.iter().collect();
    rels.sort_by_key(|(id, _)| **id);
    put_uv(&mut buf, rels.len() as u64);
    for (id, rel) in rels {
        put_relation_id(&mut buf, *id);
        put_relation_tuples(&mut buf, id.1, rel)?;
    }

    // Update-session seed.
    match &spec.session {
        None => buf.push(0),
        Some(seed) => {
            buf.push(1);
            put_uv(&mut buf, seed.preseed.len() as u64);
            for (id, rel) in &seed.preseed {
                put_relation_id(&mut buf, *id);
                put_relation_tuples(&mut buf, id.1, rel)?;
            }
            put_uv(&mut buf, seed.inject.len() as u64);
            for (id, tuples) in &seed.inject {
                put_relation_id(&mut buf, *id);
                put_bytes(&mut buf, &codec::encode_batch(id.1, tuples)?);
            }
        }
    }

    // Pending recovery handshake, absorbed before the first engine step.
    match recover {
        None => buf.push(0),
        Some(env) => {
            buf.push(1);
            put_bytes(&mut buf, &encode_envelope(spec.program.processor, env));
        }
    }
    Ok(buf)
}

pub(crate) fn decode_job(bytes: &[u8], decode_constraint: ConstraintDecode) -> Result<JobFrame> {
    let mut c = Cursor::new(bytes);
    let epoch = c.get_uv().ok_or_else(|| corrupt("job epoch"))?;
    let n = get_usize(&mut c, "job fleet size")?;
    if n == 0 || n > 1 << 16 {
        return Err(corrupt(&format!("implausible fleet size {n}")));
    }
    let idle_poll = c.get_uv().ok_or_else(|| corrupt("job idle_poll"))?;
    let idle_watchdog = c.get_uv().ok_or_else(|| corrupt("job idle_watchdog"))?;
    let pool_results = match c.get_u8().ok_or_else(|| corrupt("job pool flag"))? {
        0 => false,
        1 => true,
        other => return Err(corrupt(&format!("unknown pool flag {other}"))),
    };
    let morsel_threads = get_usize(&mut c, "job morsel threads")?;
    if morsel_threads == 0 || morsel_threads > 1 << 12 {
        return Err(corrupt(&format!(
            "implausible morsel thread count {morsel_threads}"
        )));
    }
    let profile = match c.get_u8().ok_or_else(|| corrupt("job profile flag"))? {
        0 => false,
        1 => true,
        other => return Err(corrupt(&format!("unknown profile flag {other}"))),
    };
    let worker = WorkerConfig {
        idle_poll: Duration::from_micros(idle_poll),
        idle_watchdog: Duration::from_micros(idle_watchdog),
        pool_results,
        morsel_threads,
        profile,
    };

    // Rebuild the symbol table; sequential re-interning must reproduce
    // the shipped ids exactly (the interner hands them out densely).
    let interner = Interner::new();
    let nsyms = get_count(&mut c, "symbol table")?;
    for idx in 0..nsyms {
        let name = c.get_bytes().ok_or_else(|| corrupt("symbol"))?;
        let name = std::str::from_utf8(name).map_err(|_| corrupt("symbol utf8"))?;
        let id = interner.intern(name);
        if id.index() != idx {
            return Err(corrupt(&format!(
                "duplicate symbol {name:?} in table (id {} at position {idx})",
                id.index()
            )));
        }
    }

    let program = get_processor_program(&mut c, &interner, decode_constraint)?;
    if program.processor >= n {
        return Err(corrupt(&format!(
            "processor {} outside fleet of {n}",
            program.processor
        )));
    }

    let mut edb = Database::new(interner.clone());
    let nrels = get_count(&mut c, "edb relations")?;
    for _ in 0..nrels {
        let id = get_relation_id(&mut c, &interner)?;
        let rel = get_relation_tuples(&mut c, id.1)?;
        edb.put_relation(id, rel)?;
    }

    let session = match c.get_u8().ok_or_else(|| corrupt("session flag"))? {
        0 => None,
        1 => {
            let npre = get_count(&mut c, "preseed relations")?;
            let mut preseed = Vec::with_capacity(npre.min(1024));
            for _ in 0..npre {
                let id = get_relation_id(&mut c, &interner)?;
                preseed.push((id, get_relation_tuples(&mut c, id.1)?));
            }
            let ninj = get_count(&mut c, "inject relations")?;
            let mut inject = Vec::with_capacity(ninj.min(1024));
            for _ in 0..ninj {
                let id = get_relation_id(&mut c, &interner)?;
                let bytes = c.get_bytes().ok_or_else(|| corrupt("inject payload"))?;
                inject.push((id, codec::decode_batch(bytes)?));
            }
            Some(Arc::new(SessionSeed { preseed, inject }))
        }
        other => return Err(corrupt(&format!("unknown session flag {other}"))),
    };
    let recover = match c.get_u8().ok_or_else(|| corrupt("recover flag"))? {
        0 => None,
        1 => {
            let bytes = c.get_bytes().ok_or_else(|| corrupt("recover envelope"))?;
            let (_, env) = decode_envelope(bytes, &interner)?;
            if !matches!(env.message, Message::Recover { .. }) {
                return Err(corrupt("job recovery slot holds a non-Recover message"));
            }
            Some(env)
        }
        other => return Err(corrupt(&format!("unknown recover flag {other}"))),
    };
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after job"));
    }
    Ok(JobFrame {
        epoch,
        n,
        worker,
        spec: WorkerSpec { program, edb: Arc::new(edb), session },
        recover,
    })
}

fn put_processor_program(buf: &mut Vec<u8>, pp: &ProcessorProgram) -> Result<()> {
    put_uv(buf, pp.processor as u64);
    put_program(buf, &pp.program)?;
    put_uv(buf, pp.outgoing.len() as u64);
    for ch in &pp.outgoing {
        put_relation_id(buf, ch.channel);
        put_uv(buf, ch.dest as u64);
        put_relation_id(buf, ch.inbox);
    }
    put_uv(buf, pp.inboxes.len() as u64);
    for id in &pp.inboxes {
        put_relation_id(buf, *id);
    }
    put_uv(buf, pp.processing_rules.len() as u64);
    for r in &pp.processing_rules {
        put_uv(buf, *r as u64);
    }
    put_uv(buf, pp.pooling.len() as u64);
    for (local, global) in &pp.pooling {
        put_relation_id(buf, *local);
        put_relation_id(buf, *global);
    }
    put_uv(buf, pp.local_idb.len() as u64);
    for id in &pp.local_idb {
        put_relation_id(buf, *id);
    }
    put_uv(buf, pp.retract_channels.len() as u64);
    for id in &pp.retract_channels {
        put_relation_id(buf, *id);
    }
    Ok(())
}

fn get_processor_program(
    c: &mut Cursor,
    interner: &Interner,
    decode_constraint: ConstraintDecode,
) -> Result<ProcessorProgram> {
    let processor = get_usize(c, "processor index")?;
    let program = get_program(c, interner, decode_constraint)?;
    let nout = get_count(c, "outgoing channels")?;
    let mut outgoing = Vec::with_capacity(nout.min(1024));
    for _ in 0..nout {
        let channel = get_relation_id(c, interner)?;
        let dest = get_usize(c, "channel dest")?;
        let inbox = get_relation_id(c, interner)?;
        outgoing.push(ChannelOut { channel, dest, inbox });
    }
    let read_ids = |c: &mut Cursor, what: &str| -> Result<Vec<RelationId>> {
        let k = get_count(c, what)?;
        let mut v = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            v.push(get_relation_id(c, interner)?);
        }
        Ok(v)
    };
    let inboxes = read_ids(c, "inboxes")?;
    let nproc = get_count(c, "processing rules")?;
    let mut processing_rules = Vec::with_capacity(nproc.min(1024));
    for _ in 0..nproc {
        processing_rules.push(get_usize(c, "processing rule index")?);
    }
    let npool = get_count(c, "pooling pairs")?;
    let mut pooling = Vec::with_capacity(npool.min(1024));
    for _ in 0..npool {
        let local = get_relation_id(c, interner)?;
        let global = get_relation_id(c, interner)?;
        pooling.push((local, global));
    }
    let local_idb = read_ids(c, "local idb")?;
    let retract_channels = read_ids(c, "retract channels")?;
    Ok(ProcessorProgram {
        processor,
        program,
        outgoing,
        inboxes,
        processing_rules,
        pooling,
        local_idb,
        retract_channels,
    })
}

const LIT_ATOM: u8 = 0;
const LIT_CONSTRAINT: u8 = 1;
const TERM_VAR: u8 = 0;
const TERM_INT: u8 = 1;
const TERM_SYM: u8 = 2;

fn put_program(buf: &mut Vec<u8>, program: &Program) -> Result<()> {
    put_uv(buf, program.rules.len() as u64);
    for rule in &program.rules {
        put_atom(buf, &rule.head);
        put_uv(buf, rule.body.len() as u64);
        for lit in &rule.body {
            match lit {
                Literal::Atom(a) => {
                    buf.push(LIT_ATOM);
                    put_atom(buf, a);
                }
                Literal::Constraint(cref) => {
                    let encoded = cref.wire_encode().ok_or_else(|| {
                        Error::Runtime(format!(
                            "constraint {} cannot travel to a worker process \
                             (no wire encoding)",
                            cref.describe(&program.interner)
                        ))
                    })?;
                    buf.push(LIT_CONSTRAINT);
                    put_bytes(buf, &encoded);
                }
            }
        }
    }
    Ok(())
}

fn put_atom(buf: &mut Vec<u8>, atom: &Atom) {
    put_uv(buf, u64::from(atom.predicate.0));
    put_uv(buf, atom.terms.len() as u64);
    for term in &atom.terms {
        match term {
            Term::Var(v) => {
                buf.push(TERM_VAR);
                put_uv(buf, u64::from(v.0 .0));
            }
            Term::Const(gst_common::Value::Int(i)) => {
                buf.push(TERM_INT);
                put_sv(buf, *i);
            }
            Term::Const(gst_common::Value::Sym(s)) => {
                buf.push(TERM_SYM);
                put_uv(buf, u64::from(s.0));
            }
        }
    }
}

fn get_program(
    c: &mut Cursor,
    interner: &Interner,
    decode_constraint: ConstraintDecode,
) -> Result<Program> {
    let nrules = get_count(c, "rules")?;
    let mut rules = Vec::with_capacity(nrules.min(1024));
    for _ in 0..nrules {
        let head = get_atom(c, interner)?;
        let nbody = get_count(c, "body literals")?;
        let mut body = Vec::with_capacity(nbody.min(1024));
        for _ in 0..nbody {
            match c.get_u8().ok_or_else(|| corrupt("literal tag"))? {
                LIT_ATOM => body.push(Literal::Atom(get_atom(c, interner)?)),
                LIT_CONSTRAINT => {
                    let bytes = c.get_bytes().ok_or_else(|| corrupt("constraint bytes"))?;
                    let decode = decode_constraint.ok_or_else(|| {
                        Error::Runtime(
                            "job carries a constraint literal but this worker has \
                             no constraint decoder"
                                .into(),
                        )
                    })?;
                    body.push(Literal::Constraint(decode(bytes)?));
                }
                other => return Err(corrupt(&format!("unknown literal tag {other}"))),
            }
        }
        rules.push(Rule { head, body });
    }
    Ok(Program::new(rules, interner.clone()))
}

fn get_atom(c: &mut Cursor, interner: &Interner) -> Result<Atom> {
    let predicate = get_symbol(c, interner, "atom predicate")?;
    let nterms = get_count(c, "atom terms")?;
    let mut terms = Vec::with_capacity(nterms.min(64));
    for _ in 0..nterms {
        terms.push(match c.get_u8().ok_or_else(|| corrupt("term tag"))? {
            TERM_VAR => Term::Var(Variable(get_symbol(c, interner, "term variable")?)),
            TERM_INT => Term::Const(gst_common::Value::Int(
                c.get_sv().ok_or_else(|| corrupt("term int"))?,
            )),
            TERM_SYM => Term::Const(gst_common::Value::Sym(get_symbol(
                c, interner, "term symbol",
            )?)),
            other => return Err(corrupt(&format!("unknown term tag {other}"))),
        });
    }
    Ok(Atom { predicate, terms })
}

// ---------------------------------------------------------------------
// Envelope frames
// ---------------------------------------------------------------------

const MSG_BATCH: u8 = 0;
const MSG_TOKEN: u8 = 1;
const MSG_TERMINATE: u8 = 2;
const MSG_RECOVER: u8 = 3;
const MSG_ACK_SYNC: u8 = 4;
const MSG_SNAPSHOT: u8 = 5;
const MSG_ABORT: u8 = 6;

/// Encode a routed envelope. The destination leads so a relay can route
/// the frame without decoding the rest.
pub(crate) fn encode_envelope(dest: usize, env: &Envelope) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_uv(&mut buf, dest as u64);
    put_uv(&mut buf, env.from as u64);
    put_uv(&mut buf, env.seq);
    put_uv(&mut buf, env.epoch);
    put_uv(&mut buf, env.ack);
    match &env.message {
        Message::Batch { inbox, payload, retract } => {
            buf.push(MSG_BATCH);
            put_relation_id(&mut buf, *inbox);
            buf.push(u8::from(*retract));
            put_bytes(&mut buf, payload);
        }
        Message::Token(t) => {
            buf.push(MSG_TOKEN);
            buf.push(match t.color {
                Color::White => 0,
                Color::Black => 1,
            });
            put_sv(&mut buf, t.count);
            put_uv(&mut buf, t.epoch);
        }
        Message::Terminate => buf.push(MSG_TERMINATE),
        Message::Recover { epoch, restarted } => {
            buf.push(MSG_RECOVER);
            put_uv(&mut buf, *epoch);
            put_uv(&mut buf, *restarted as u64);
        }
        Message::AckSync { acked } => {
            buf.push(MSG_ACK_SYNC);
            put_uv(&mut buf, *acked);
        }
        Message::Snapshot { payloads, upto } => {
            buf.push(MSG_SNAPSHOT);
            put_uv(&mut buf, *upto);
            put_uv(&mut buf, payloads.len() as u64);
            for (inbox, payload) in payloads {
                put_relation_id(&mut buf, *inbox);
                put_bytes(&mut buf, payload);
            }
        }
        Message::Abort { reason } => {
            buf.push(MSG_ABORT);
            put_bytes(&mut buf, reason.as_bytes());
        }
    }
    buf
}

/// Read just the destination off an envelope body without decoding the
/// rest (the relay validates the full envelope separately before
/// forwarding, but routing-layer tests pin the dest-leads-the-body
/// invariant through this).
#[cfg(test)]
pub(crate) fn peek_envelope_dest(bytes: &[u8]) -> Result<usize> {
    let mut c = Cursor::new(bytes);
    get_usize(&mut c, "envelope dest")
}

/// Decode a routed envelope body into `(dest, envelope)`.
pub(crate) fn decode_envelope(bytes: &[u8], interner: &Interner) -> Result<(usize, Envelope)> {
    let mut c = Cursor::new(bytes);
    let dest = get_usize(&mut c, "envelope dest")?;
    let from = get_usize(&mut c, "envelope from")?;
    let seq = c.get_uv().ok_or_else(|| corrupt("envelope seq"))?;
    let epoch = c.get_uv().ok_or_else(|| corrupt("envelope epoch"))?;
    let ack = c.get_uv().ok_or_else(|| corrupt("envelope ack"))?;
    let message = match c.get_u8().ok_or_else(|| corrupt("message tag"))? {
        MSG_BATCH => {
            let inbox = get_relation_id(&mut c, interner)?;
            let retract = match c.get_u8().ok_or_else(|| corrupt("retract flag"))? {
                0 => false,
                1 => true,
                other => return Err(corrupt(&format!("unknown retract flag {other}"))),
            };
            let payload = c.get_bytes().ok_or_else(|| corrupt("batch payload"))?;
            // Full structural walk, not just the header: a corrupt
            // payload must die at the link (recoverable) instead of in
            // the worker's deferred decode (fatal).
            codec::validate_batch(payload)?;
            Message::Batch {
                inbox,
                payload: Payload::new(payload.to_vec()),
                retract,
            }
        }
        MSG_TOKEN => {
            let color = match c.get_u8().ok_or_else(|| corrupt("token color"))? {
                0 => Color::White,
                1 => Color::Black,
                other => return Err(corrupt(&format!("unknown token color {other}"))),
            };
            let count = c.get_sv().ok_or_else(|| corrupt("token count"))?;
            let tepoch = c.get_uv().ok_or_else(|| corrupt("token epoch"))?;
            Message::Token(TokenMsg { color, count, epoch: tepoch })
        }
        MSG_TERMINATE => Message::Terminate,
        MSG_RECOVER => {
            let repoch = c.get_uv().ok_or_else(|| corrupt("recover epoch"))?;
            let restarted = get_usize(&mut c, "recover restarted")?;
            Message::Recover { epoch: repoch, restarted }
        }
        MSG_ACK_SYNC => Message::AckSync {
            acked: c.get_uv().ok_or_else(|| corrupt("ack-sync watermark"))?,
        },
        MSG_SNAPSHOT => {
            let upto = c.get_uv().ok_or_else(|| corrupt("snapshot watermark"))?;
            let npay = get_count(&mut c, "snapshot payloads")?;
            let mut payloads = Vec::with_capacity(npay.min(1024));
            for _ in 0..npay {
                let inbox = get_relation_id(&mut c, interner)?;
                let payload = c.get_bytes().ok_or_else(|| corrupt("snapshot payload"))?;
                codec::validate_batch(payload)?;
                payloads.push((inbox, Payload::new(payload.to_vec())));
            }
            Message::Snapshot { payloads, upto }
        }
        MSG_ABORT => {
            let reason = c.get_bytes().ok_or_else(|| corrupt("abort reason"))?;
            let reason =
                std::str::from_utf8(reason).map_err(|_| corrupt("abort reason utf8"))?;
            Message::Abort { reason: reason.to_string() }
        }
        other => return Err(corrupt(&format!("unknown message tag {other}"))),
    };
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after envelope"));
    }
    Ok((dest, Envelope { from, seq, epoch, ack, message }))
}

// ---------------------------------------------------------------------
// Result frames
// ---------------------------------------------------------------------

/// Sparse histogram encoding: the scalar summary plus only the nonzero
/// buckets as `(index, count)` pairs — a handful of varints for typical
/// profiles instead of 64 fixed slots.
fn put_histogram(buf: &mut Vec<u8>, h: &gst_common::Histogram) {
    put_uv(buf, h.count);
    put_uv(buf, h.sum);
    put_uv(buf, h.min);
    put_uv(buf, h.max);
    let nonzero = h.nonzero_buckets().count() as u64;
    put_uv(buf, nonzero);
    for (i, n) in h.nonzero_buckets() {
        put_uv(buf, i as u64);
        put_uv(buf, n);
    }
}

fn get_histogram(c: &mut Cursor, what: &str) -> Result<gst_common::Histogram> {
    let count = c.get_uv().ok_or_else(|| corrupt(what))?;
    let sum = c.get_uv().ok_or_else(|| corrupt(what))?;
    let min = c.get_uv().ok_or_else(|| corrupt(what))?;
    let max = c.get_uv().ok_or_else(|| corrupt(what))?;
    let npairs = get_count(c, what)?;
    if npairs > gst_common::HIST_BUCKETS {
        return Err(corrupt(&format!("implausible {what} bucket count {npairs}")));
    }
    let mut pairs = Vec::with_capacity(npairs);
    for _ in 0..npairs {
        let i = get_usize(c, what)?;
        let n = c.get_uv().ok_or_else(|| corrupt(what))?;
        pairs.push((i, n));
    }
    Ok(gst_common::Histogram::from_sparse(&pairs, count, sum, min, max))
}

fn put_phase_totals(buf: &mut Vec<u8>, p: &crate::profile::PhaseTotals) {
    for v in p.as_array() {
        put_uv(buf, v);
    }
}

fn get_phase_totals(c: &mut Cursor, what: &str) -> Result<crate::profile::PhaseTotals> {
    let mut vals = [0u64; 5];
    for slot in vals.iter_mut() {
        *slot = c.get_uv().ok_or_else(|| corrupt(what))?;
    }
    Ok(crate::profile::PhaseTotals {
        compute: vals[0],
        encode: vals[1],
        decode: vals[2],
        replay: vals[3],
        idle: vals[4],
    })
}

pub(crate) fn encode_result(
    report: &WorkerReport,
    pooled: &[(RelationId, Relation)],
) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(256);
    put_uv(&mut buf, report.processor as u64);
    put_uv(&mut buf, report.eval.rounds);
    put_uv(&mut buf, report.eval.firings);
    put_uv(&mut buf, report.eval.derived);
    put_uv(&mut buf, report.eval.duplicates);
    put_uv(&mut buf, report.eval.morsel_runs);
    put_uv(&mut buf, report.eval.morsel_chunks);
    put_uv(&mut buf, report.eval.firings_by_rule.len() as u64);
    for f in &report.eval.firings_by_rule {
        put_uv(&mut buf, *f);
    }
    put_uv(&mut buf, report.eval.time_by_rule.len() as u64);
    for t in &report.eval.time_by_rule {
        put_uv(&mut buf, *t);
    }
    put_uv(&mut buf, report.eval.per_round.len() as u64);
    for s in &report.eval.per_round {
        put_uv(&mut buf, s.round);
        put_uv(&mut buf, s.submitted);
        put_uv(&mut buf, s.fresh);
    }
    put_histogram(&mut buf, &report.eval.chunk_service);
    put_uv(&mut buf, report.processing_firings);
    put_uv(&mut buf, report.sent_tuples_to.len() as u64);
    for v in &report.sent_tuples_to {
        put_uv(&mut buf, *v);
    }
    for v in &report.sent_bytes_to {
        put_uv(&mut buf, *v);
    }
    for v in [
        report.sent_messages,
        report.received_tuples,
        report.received_bytes,
        report.encode_calls,
        report.encoded_bytes,
        report.encoded_raw_bytes,
        report.duplicate_batches,
        report.replayed_batches,
        report.stale_dropped,
        report.retract_tuples_sent,
        report.retract_tuples_received,
        report.pooled_tuples,
        report.busy.as_micros() as u64,
    ] {
        put_uv(&mut buf, v);
    }
    put_uv(&mut buf, report.sent_per_round.len() as u64);
    for (round, tuples) in &report.sent_per_round {
        put_uv(&mut buf, *round);
        put_uv(&mut buf, *tuples);
    }
    match &report.profile {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            put_phase_totals(&mut buf, &p.phases);
            put_histogram(&mut buf, &p.round_latency);
            put_histogram(&mut buf, &p.encode_time);
            put_histogram(&mut buf, &p.decode_time);
            put_histogram(&mut buf, &p.batch_bytes);
            put_uv(&mut buf, p.per_round.len() as u64);
            for (round, totals) in &p.per_round {
                put_uv(&mut buf, *round);
                put_phase_totals(&mut buf, totals);
            }
        }
    }
    put_uv(&mut buf, pooled.len() as u64);
    for (id, rel) in pooled {
        put_relation_id(&mut buf, *id);
        put_relation_tuples(&mut buf, id.1, rel)?;
    }
    Ok(buf)
}

pub(crate) fn decode_result(
    bytes: &[u8],
    interner: &Interner,
) -> Result<(WorkerReport, PooledRelations)> {
    let mut c = Cursor::new(bytes);
    let processor = get_usize(&mut c, "result processor")?;
    let rounds = c.get_uv().ok_or_else(|| corrupt("eval rounds"))?;
    let firings = c.get_uv().ok_or_else(|| corrupt("eval firings"))?;
    let derived = c.get_uv().ok_or_else(|| corrupt("eval derived"))?;
    let duplicates = c.get_uv().ok_or_else(|| corrupt("eval duplicates"))?;
    let morsel_runs = c.get_uv().ok_or_else(|| corrupt("eval morsel runs"))?;
    let morsel_chunks = c.get_uv().ok_or_else(|| corrupt("eval morsel chunks"))?;
    let nrules = get_count(&mut c, "firings by rule")?;
    let mut firings_by_rule = Vec::with_capacity(nrules.min(1024));
    for _ in 0..nrules {
        firings_by_rule.push(c.get_uv().ok_or_else(|| corrupt("rule firings"))?);
    }
    let ntimes = get_count(&mut c, "time by rule")?;
    let mut time_by_rule = Vec::with_capacity(ntimes.min(1024));
    for _ in 0..ntimes {
        time_by_rule.push(c.get_uv().ok_or_else(|| corrupt("rule time"))?);
    }
    let nsamples = get_count(&mut c, "round samples")?;
    let mut per_round = Vec::with_capacity(nsamples.min(1024));
    for _ in 0..nsamples {
        per_round.push(RoundSample {
            round: c.get_uv().ok_or_else(|| corrupt("sample round"))?,
            submitted: c.get_uv().ok_or_else(|| corrupt("sample submitted"))?,
            fresh: c.get_uv().ok_or_else(|| corrupt("sample fresh"))?,
        });
    }
    let chunk_service = get_histogram(&mut c, "chunk service histogram")?;
    let eval = EvalStats {
        rounds,
        firings,
        derived,
        duplicates,
        morsel_runs,
        morsel_chunks,
        firings_by_rule,
        time_by_rule,
        per_round,
        chunk_service,
    };
    let processing_firings = c.get_uv().ok_or_else(|| corrupt("processing firings"))?;
    let nlinks = get_count(&mut c, "link counters")?;
    let mut sent_tuples_to = Vec::with_capacity(nlinks.min(1024));
    for _ in 0..nlinks {
        sent_tuples_to.push(c.get_uv().ok_or_else(|| corrupt("sent tuples"))?);
    }
    let mut sent_bytes_to = Vec::with_capacity(nlinks.min(1024));
    for _ in 0..nlinks {
        sent_bytes_to.push(c.get_uv().ok_or_else(|| corrupt("sent bytes"))?);
    }
    let mut scalars = [0u64; 13];
    for (k, slot) in scalars.iter_mut().enumerate() {
        *slot = c
            .get_uv()
            .ok_or_else(|| corrupt(&format!("report scalar {k}")))?;
    }
    let nrounds = get_count(&mut c, "send rounds")?;
    let mut sent_per_round = Vec::with_capacity(nrounds.min(1024));
    for _ in 0..nrounds {
        let round = c.get_uv().ok_or_else(|| corrupt("send round"))?;
        let tuples = c.get_uv().ok_or_else(|| corrupt("send round tuples"))?;
        sent_per_round.push((round, tuples));
    }
    let profile = match c.get_u8().ok_or_else(|| corrupt("profile flag"))? {
        0 => None,
        1 => {
            let phases = get_phase_totals(&mut c, "profile phases")?;
            let round_latency = get_histogram(&mut c, "round latency histogram")?;
            let encode_time = get_histogram(&mut c, "encode time histogram")?;
            let decode_time = get_histogram(&mut c, "decode time histogram")?;
            let batch_bytes = get_histogram(&mut c, "batch bytes histogram")?;
            let nprofrounds = get_count(&mut c, "profile rounds")?;
            let mut prof_per_round = Vec::with_capacity(nprofrounds.min(1024));
            for _ in 0..nprofrounds {
                let round = c.get_uv().ok_or_else(|| corrupt("profile round"))?;
                let totals = get_phase_totals(&mut c, "profile round phases")?;
                prof_per_round.push((round, totals));
            }
            Some(crate::profile::WorkerProfile {
                phases,
                round_latency,
                encode_time,
                decode_time,
                batch_bytes,
                per_round: prof_per_round,
            })
        }
        other => return Err(corrupt(&format!("unknown profile flag {other}"))),
    };
    let report = WorkerReport {
        processor,
        eval,
        processing_firings,
        sent_tuples_to,
        sent_bytes_to,
        sent_messages: scalars[0],
        received_tuples: scalars[1],
        received_bytes: scalars[2],
        encode_calls: scalars[3],
        encoded_bytes: scalars[4],
        encoded_raw_bytes: scalars[5],
        duplicate_batches: scalars[6],
        replayed_batches: scalars[7],
        stale_dropped: scalars[8],
        retract_tuples_sent: scalars[9],
        retract_tuples_received: scalars[10],
        pooled_tuples: scalars[11],
        busy: Duration::from_micros(scalars[12]),
        sent_per_round,
        profile,
    };
    let npooled = get_count(&mut c, "pooled relations")?;
    let mut pooled: PooledRelations = Vec::with_capacity(npooled.min(1024));
    for _ in 0..npooled {
        let id = get_relation_id(&mut c, interner)?;
        pooled.push((id, get_relation_tuples(&mut c, id.1)?));
    }
    if c.remaining() != 0 {
        return Err(corrupt("trailing bytes after result"));
    }
    Ok((report, pooled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{ituple, SmallRng, Value};
    use gst_frontend::parse_program;

    fn sample_spec() -> WorkerSpec {
        let unit = parse_program(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Y) :- e(X,Z), t(Z,Y).\n\
             ship(X,Y) :- t(X,Y).",
        )
        .unwrap();
        let interner = unit.program.interner.clone();
        let e = (interner.get("e").unwrap(), 2);
        let t = (interner.get("t").unwrap(), 2);
        let ship = (interner.get("ship").unwrap(), 2);
        let inbox = (interner.intern("t@in"), 2);
        let answer = (interner.intern("answer"), 2);
        let sym = interner.intern("leaf");
        let mut db = Database::new(interner.clone());
        for k in 0..5i64 {
            db.insert(e, ituple![k, k + 1]).unwrap();
        }
        db.insert(e, Tuple::new(&[Value::Sym(sym), Value::Int(-3)])).unwrap();
        WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit.program,
                outgoing: vec![ChannelOut { channel: ship, dest: 0, inbox }],
                inboxes: vec![inbox],
                processing_rules: vec![0, 1],
                pooling: vec![(t, answer)],
                local_idb: vec![],
                retract_channels: vec![ship],
            },
            edb: Arc::new(db),
            session: None,
        }
    }

    fn roundtrip_job(spec: &WorkerSpec) -> JobFrame {
        let body = encode_job(3, 4, &WorkerConfig::default(), spec, None).unwrap();
        decode_job(&body, None).unwrap()
    }

    #[test]
    fn job_round_trips_spec_and_config() {
        let spec = sample_spec();
        let job = roundtrip_job(&spec);
        assert_eq!(job.epoch, 3);
        assert_eq!(job.n, 4);
        assert_eq!(job.worker.idle_poll, WorkerConfig::default().idle_poll);
        assert_eq!(job.worker.idle_watchdog, WorkerConfig::default().idle_watchdog);
        assert!(job.worker.pool_results);
        assert_eq!(job.worker.morsel_threads, 1);
        assert_eq!(job.spec.program.processor, 1);
        assert_eq!(job.spec.program.program.rules, spec.program.program.rules);
        assert_eq!(job.spec.program.outgoing, spec.program.outgoing);
        assert_eq!(job.spec.program.inboxes, spec.program.inboxes);
        assert_eq!(job.spec.program.processing_rules, spec.program.processing_rules);
        assert_eq!(job.spec.program.pooling, spec.program.pooling);
        assert_eq!(job.spec.program.retract_channels, spec.program.retract_channels);
        // The decoded interner resolves every shipped symbol identically.
        let a = &spec.program.program.interner;
        let b = &job.spec.program.program.interner;
        assert_eq!(a.len(), b.len());
        for idx in 0..a.len() {
            assert_eq!(
                a.resolve(SymbolId(idx as u32)),
                b.resolve(SymbolId(idx as u32))
            );
        }
        // EDB relations survive as sets.
        for (id, rel) in spec.edb.iter() {
            let got = job.spec.edb.relation(*id).expect("relation shipped");
            assert!(rel.set_eq(got), "relation {id:?} differs");
        }
        assert_eq!(job.spec.edb.relation_count(), spec.edb.relation_count());
    }

    #[test]
    fn job_carries_morsel_threads() {
        let spec = sample_spec();
        let config = WorkerConfig {
            morsel_threads: 6,
            ..WorkerConfig::default()
        };
        let body = encode_job(0, 2, &config, &spec, None).unwrap();
        let job = decode_job(&body, None).unwrap();
        assert_eq!(job.worker.morsel_threads, 6);
    }

    #[test]
    fn job_rejects_zero_morsel_threads() {
        let spec = sample_spec();
        let config = WorkerConfig {
            morsel_threads: 0,
            ..WorkerConfig::default()
        };
        let body = encode_job(0, 2, &config, &spec, None).unwrap();
        assert!(decode_job(&body, None).is_err());
    }

    #[test]
    fn job_round_trips_session_seed() {
        let mut spec = sample_spec();
        let interner = spec.program.program.interner.clone();
        let t = (interner.get("t").unwrap(), 2);
        let mut state = Relation::new(2);
        state.insert(ituple![10, 11]).unwrap();
        state.insert(ituple![11, 12]).unwrap();
        spec.session = Some(Arc::new(SessionSeed {
            preseed: vec![(t, state.clone())],
            inject: vec![(t, vec![ituple![99, 100]])],
        }));
        let job = roundtrip_job(&spec);
        let seed = job.spec.session.expect("seed shipped");
        assert_eq!(seed.preseed.len(), 1);
        assert!(seed.preseed[0].1.set_eq(&state));
        assert_eq!(seed.inject, vec![(t, vec![ituple![99, 100]])]);
    }

    #[test]
    fn job_with_untravelable_constraint_is_a_clean_error() {
        struct Opaque(Vec<Variable>);
        impl gst_frontend::ast::Constraint for Opaque {
            fn variables(&self) -> &[Variable] {
                &self.0
            }
            fn holds(&self, _: &[Value]) -> bool {
                true
            }
            fn describe(&self, _: &Interner) -> String {
                "opaque".into()
            }
        }
        let mut spec = sample_spec();
        spec.program.program.rules[0]
            .body
            .push(Literal::Constraint(Arc::new(Opaque(vec![]))));
        let err = encode_job(0, 2, &WorkerConfig::default(), &spec, None).unwrap_err();
        assert!(err.to_string().contains("cannot travel"), "got: {err}");
    }

    #[test]
    fn envelope_round_trips_every_message_kind() {
        let spec = sample_spec();
        let interner = spec.program.program.interner.clone();
        let inbox = (interner.get("t@in").unwrap(), 2);
        let payload = codec::encode_batch(2, &[ituple![1, 2], ituple![3, 4]]).unwrap();
        let messages = vec![
            Message::Batch { inbox, payload: payload.clone(), retract: true },
            Message::Token(TokenMsg { color: Color::Black, count: -7, epoch: 2 }),
            Message::Terminate,
            Message::Recover { epoch: 5, restarted: 3 },
            Message::AckSync { acked: 42 },
            Message::Snapshot { payloads: vec![(inbox, payload)], upto: 9 },
            Message::Abort { reason: "boom".into() },
        ];
        for (k, message) in messages.into_iter().enumerate() {
            let env = Envelope { from: 2, seq: k as u64, epoch: 1, ack: 8, message };
            let body = encode_envelope(3, &env);
            assert_eq!(peek_envelope_dest(&body).unwrap(), 3, "kind {k}");
            let (dest, decoded) = decode_envelope(&body, &interner).unwrap();
            assert_eq!(dest, 3);
            assert_eq!(decoded, env, "message kind {k}");
        }
    }

    #[test]
    fn result_round_trips_report_and_pooled() {
        let report = WorkerReport {
            processor: 2,
            eval: EvalStats {
                rounds: 7,
                firings: 100,
                derived: 60,
                duplicates: 40,
                morsel_runs: 2,
                morsel_chunks: 9,
                firings_by_rule: vec![10, 90],
                time_by_rule: vec![3, 1200],
                per_round: vec![RoundSample { round: 1, submitted: 5, fresh: 3 }],
                chunk_service: {
                    let mut h = gst_common::Histogram::new();
                    h.record(40);
                    h.record(512);
                    h
                },
            },
            processing_firings: 90,
            sent_tuples_to: vec![0, 4, 9],
            sent_bytes_to: vec![0, 44, 99],
            sent_messages: 6,
            received_tuples: 11,
            received_bytes: 220,
            encode_calls: 3,
            encoded_bytes: 150,
            encoded_raw_bytes: 600,
            duplicate_batches: 1,
            replayed_batches: 2,
            stale_dropped: 3,
            retract_tuples_sent: 4,
            retract_tuples_received: 5,
            pooled_tuples: 2,
            busy: Duration::from_micros(12345),
            sent_per_round: vec![(2, 4), (5, 5)],
            profile: Some({
                let mut p = crate::profile::WorkerProfile {
                    phases: crate::profile::PhaseTotals {
                        compute: 900,
                        encode: 50,
                        decode: 30,
                        replay: 7,
                        idle: 400,
                    },
                    ..Default::default()
                };
                p.round_latency.record(120);
                p.round_latency.record(300);
                p.encode_time.record(25);
                p.decode_time.record(15);
                p.batch_bytes.record(4096);
                p.per_round = vec![
                    (
                        0,
                        crate::profile::PhaseTotals {
                            compute: 120,
                            ..Default::default()
                        },
                    ),
                    (
                        3,
                        crate::profile::PhaseTotals {
                            compute: 300,
                            idle: 400,
                            ..Default::default()
                        },
                    ),
                ];
                p
            }),
        };
        let interner = Interner::new();
        let answer = (interner.intern("answer"), 2);
        let mut rel = Relation::new(2);
        rel.insert(ituple![1, 2]).unwrap();
        rel.insert(ituple![3, 4]).unwrap();
        let pooled: PooledRelations = vec![(answer, rel.clone())];
        let body = encode_result(&report, &pooled).unwrap();
        let (got_report, got_pooled) = decode_result(&body, &interner).unwrap();
        assert_eq!(got_report.processor, 2);
        assert_eq!(got_report.eval.firings, 100);
        assert_eq!(got_report.eval.firings_by_rule, vec![10, 90]);
        assert_eq!(got_report.eval.per_round.len(), 1);
        assert_eq!(got_report.sent_tuples_to, vec![0, 4, 9]);
        assert_eq!(got_report.sent_bytes_to, vec![0, 44, 99]);
        assert_eq!(got_report.replayed_batches, 2);
        assert_eq!(got_report.busy, Duration::from_micros(12345));
        assert_eq!(got_report.sent_per_round, vec![(2, 4), (5, 5)]);
        assert_eq!(got_report.eval.time_by_rule, vec![3, 1200]);
        assert_eq!(got_report.eval.chunk_service, report.eval.chunk_service);
        assert_eq!(got_report.profile, report.profile);
        assert_eq!(got_pooled.len(), 1);
        assert_eq!(got_pooled[0].0, answer);
        assert!(got_pooled[0].1.set_eq(&rel));
    }

    #[test]
    fn hello_error_and_nonce_round_trip() {
        assert_eq!(decode_hello(&encode_hello(3, 2)).unwrap(), (3, 2));
        assert_eq!(
            decode_error(&encode_error(true, "watchdog expired")).unwrap(),
            (true, "watchdog expired".to_string())
        );
        assert_eq!(decode_nonce(&encode_nonce(0xFEED)).unwrap(), 0xFEED);
    }

    /// A `Read` that hands out at most `chunk` bytes per call — the
    /// split-read shape a real TCP stream produces.
    struct Chunked<'a> {
        bytes: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = out
                .len()
                .min(self.chunk)
                .min(self.bytes.len() - self.pos);
            out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frames_survive_arbitrarily_split_reads() {
        let body = encode_hello(7, 3);
        let mut stream = Vec::new();
        write_frame(&mut stream, FRAME_HELLO, &body).unwrap();
        write_frame(&mut stream, FRAME_SHUTDOWN, &[]).unwrap();
        for chunk in 1..=stream.len() {
            let mut r = Chunked { bytes: &stream, pos: 0, chunk };
            let (kind, got) = read_frame(&mut r).unwrap().expect("first frame");
            assert_eq!((kind, got.as_slice()), (FRAME_HELLO, body.as_slice()));
            let (kind, got) = read_frame(&mut r).unwrap().expect("second frame");
            assert_eq!((kind, got.as_slice()), (FRAME_SHUTDOWN, &[] as &[u8]));
            assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        }
    }

    #[test]
    fn garbage_length_prefix_is_rejected_before_allocation() {
        // Length far beyond MAX_FRAME: must fail fast, not allocate 4 GB.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.push(FRAME_HELLO);
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("implausible frame length"));

        let err = read_frame(&mut 0u32.to_le_bytes().as_slice()).unwrap_err();
        assert!(err.to_string().contains("zero-length frame"));
    }

    /// Every strict prefix of a framed stream is either a clean EOF (cut
    /// at a frame boundary) or a typed error — never a panic, never an
    /// accepted partial frame.
    #[test]
    fn every_frame_truncation_is_clean_eof_or_typed_error() {
        let spec = sample_spec();
        let job = encode_job(0, 2, &WorkerConfig::default(), &spec, None).unwrap();
        let mut stream = Vec::new();
        write_frame(&mut stream, FRAME_JOB, &job).unwrap();
        let boundary = stream.len();
        write_frame(&mut stream, FRAME_PING, &encode_nonce(1)).unwrap();
        for len in 0..stream.len() {
            let result = std::panic::catch_unwind(|| {
                let mut r = &stream[..len];
                loop {
                    match read_frame(&mut r) {
                        Ok(Some(_)) => {}
                        Ok(None) => return Ok(()),
                        Err(e) => return Err(e),
                    }
                }
            })
            .unwrap_or_else(|_| panic!("prefix {len} panicked"));
            match result {
                Ok(()) => assert!(
                    len == 0 || len == boundary,
                    "prefix {len} accepted but is not a frame boundary"
                ),
                Err(e) => {
                    assert!(matches!(e, Error::Runtime(_)), "prefix {len}: {e:?}")
                }
            }
        }
    }

    /// Truncating and mutating *decoded bodies* (past the frame layer)
    /// must also yield typed errors, never panics: the seeded sweep runs
    /// every body decoder over every strict prefix and a batch of
    /// single-byte corruptions.
    #[test]
    fn fuzz_body_decoders_never_panic() {
        let spec = sample_spec();
        let interner = spec.program.program.interner.clone();
        let inbox = (interner.get("t@in").unwrap(), 2);
        let payload = codec::encode_batch(2, &[ituple![1, 2]]).unwrap();
        let env = Envelope {
            from: 0,
            seq: 5,
            epoch: 1,
            ack: 2,
            message: Message::Batch { inbox, payload, retract: false },
        };
        let report = WorkerReport {
            processor: 0,
            eval: EvalStats::new(2),
            processing_firings: 0,
            sent_tuples_to: vec![0, 0],
            sent_bytes_to: vec![0, 0],
            sent_messages: 0,
            received_tuples: 0,
            received_bytes: 0,
            encode_calls: 0,
            encoded_bytes: 0,
            encoded_raw_bytes: 0,
            duplicate_batches: 0,
            replayed_batches: 0,
            stale_dropped: 0,
            retract_tuples_sent: 0,
            retract_tuples_received: 0,
            pooled_tuples: 0,
            busy: Duration::ZERO,
            sent_per_round: vec![],
            profile: Some({
                let mut p = crate::profile::WorkerProfile::default();
                p.round_latency.record(77);
                p.per_round = vec![(1, crate::profile::PhaseTotals::default())];
                p
            }),
        };
        let bodies: Vec<(&str, Vec<u8>)> = vec![
            ("hello", encode_hello(1, 0)),
            ("job", encode_job(0, 2, &WorkerConfig::default(), &spec, None).unwrap()),
            ("envelope", encode_envelope(1, &env)),
            ("result", encode_result(&report, &[]).unwrap()),
            ("error", encode_error(false, "x")),
            ("nonce", encode_nonce(7)),
        ];
        let decode_all = |name: &str, bytes: &[u8]| {
            // Each decoder must return cleanly (Ok or typed Err) on any
            // input; panics propagate out of catch_unwind and fail the
            // test with the case context.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = decode_hello(bytes);
                let _ = decode_job(bytes, None);
                let _ = decode_envelope(bytes, &interner);
                let _ = decode_result(bytes, &interner);
                let _ = decode_error(bytes);
                let _ = decode_nonce(bytes);
            }));
            assert!(r.is_ok(), "decoder panicked on corrupted {name} body");
        };
        let mut rng = SmallRng::seed_from_u64(0x0F_F1CE);
        for (name, body) in &bodies {
            for len in 0..body.len() {
                decode_all(name, &body[..len]);
            }
            for _ in 0..200 {
                let mut mutated = body.clone();
                if mutated.is_empty() {
                    continue;
                }
                let at = rng.gen_below(mutated.len() as u64) as usize;
                mutated[at] = rng.gen_below(256) as u8;
                decode_all(name, &mutated);
            }
        }
    }
}
