//! Workspace-wide error type.
//!
//! Every layer (parsing, analysis, storage, evaluation, runtime, rewriting)
//! reports failures through the single [`Error`] enum so that callers at the
//! public API boundary handle one type.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// All failures the library can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical or syntactic error while parsing Datalog source.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        column: u32,
        /// Human-readable description.
        message: String,
    },
    /// Static analysis rejected the program (unsafe rule, head base
    /// predicate, arity clash, ...).
    Analysis(String),
    /// A program was not in the shape a transformation requires
    /// (e.g. not a linear sirup).
    Shape(String),
    /// A discriminating sequence/function failed validation
    /// (e.g. variables not appearing in the rule body).
    Discriminator(String),
    /// Storage-level failure (unknown relation, arity mismatch on insert).
    Storage(String),
    /// Evaluation failure (plan compilation, unbound variable at runtime).
    Eval(String),
    /// Parallel runtime failure (worker panic, channel breakage).
    Runtime(String),
}

impl Error {
    /// Construct a parse error.
    pub fn parse(line: u32, column: u32, message: impl Into<String>) -> Self {
        Error::Parse {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Shape(m) => write!(f, "program shape error: {m}"),
            Error::Discriminator(m) => write!(f, "discriminator error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_includes_location() {
        let e = Error::parse(3, 14, "unexpected ')'");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected ')'");
    }

    #[test]
    fn display_variants() {
        assert!(Error::Analysis("x".into()).to_string().contains("analysis"));
        assert!(Error::Shape("x".into()).to_string().contains("shape"));
        assert!(Error::Discriminator("x".into())
            .to_string()
            .contains("discriminator"));
        assert!(Error::Storage("x".into()).to_string().contains("storage"));
        assert!(Error::Eval("x".into()).to_string().contains("evaluation"));
        assert!(Error::Runtime("x".into()).to_string().contains("runtime"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
