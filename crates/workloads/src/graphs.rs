//! Seeded graph generators producing arity-2 edge relations.

use gst_common::{ituple, SmallRng, Tuple};
use gst_storage::Relation;

/// A chain `0 → 1 → … → n`: `n` edges, transitive closure of size
/// `n(n+1)/2`. The deepest recursion the TC workloads produce.
pub fn chain(n: u64) -> Relation {
    (0..n as i64).map(|k| ituple![k, k + 1]).collect()
}

/// A directed cycle `0 → 1 → … → n-1 → 0`: the closure is the complete
/// digraph on `n` nodes (n² tuples).
pub fn cycle(n: u64) -> Relation {
    assert!(n >= 1, "a cycle needs at least one node");
    let n = n as i64;
    (0..n).map(|k| ituple![k, (k + 1) % n]).collect()
}

/// A complete binary tree of the given `depth` with edges parent → child;
/// node ids are heap order (root = 1). `2^depth - 2` edges.
pub fn binary_tree(depth: u32) -> Relation {
    let mut rel = Relation::new(2);
    let leaves_start = 1i64 << depth.saturating_sub(1);
    for parent in 1..leaves_start {
        rel.insert_unchecked(ituple![parent, 2 * parent]);
        rel.insert_unchecked(ituple![parent, 2 * parent + 1]);
    }
    rel
}

/// A star: `0 → k` for `k` in `1..=n` (breadth without depth).
pub fn star(n: u64) -> Relation {
    (1..=n as i64).map(|k| ituple![0, k]).collect()
}

/// A random digraph with `nodes` nodes and (up to) `edges` distinct edges,
/// self-loops excluded, deterministic in `seed`.
pub fn random_digraph(nodes: u64, edges: u64, seed: u64) -> Relation {
    assert!(nodes >= 2, "need at least two nodes for non-loop edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, edges as usize);
    let mut attempts = 0u64;
    // Distinctness can make exact `edges` unreachable on tiny graphs;
    // bound the attempts so the generator always terminates.
    let max_attempts = edges.saturating_mul(20).max(1000);
    while (rel.len() as u64) < edges && attempts < max_attempts {
        attempts += 1;
        let a = rng.gen_below(nodes) as i64;
        let b = rng.gen_below(nodes) as i64;
        if a != b {
            rel.insert_unchecked(ituple![a, b]);
        }
    }
    rel
}

/// A skewed random DAG: sources are drawn zipf-distributed (node `i` with
/// weight ∝ `1/(i+1)^s`, `s` given in tenths) and each edge points from
/// its source to a uniformly-drawn *higher-numbered* node, so
/// low-numbered nodes carry most of the out-degree — the power-law shape
/// of real graphs — and the closure stays hub-dominated instead of
/// collapsing into one strongly-connected component (where every key
/// drags the same giant closure and no partition can help). Hash
/// partitioning the TC join key then concentrates the hot nodes' closures
/// on whichever processors own them — the adversarial input for
/// skew-aware partitioning. Deterministic in `seed`. At `s_tenths = 20`
/// (s = 2) node 0 alone is the source of well over half of all edges.
pub fn zipf_digraph(nodes: u64, edges: u64, s_tenths: u32, seed: u64) -> Relation {
    assert!(nodes >= 2, "need at least two nodes for non-loop edges");
    // Integer cumulative-weight table: w_i = round(K / (i+1)^s) with a
    // fixed-point power, so the distribution is identical on every
    // platform (no float summation order concerns at these sizes, but
    // integers make that obvious).
    let s = f64::from(s_tenths) / 10.0;
    let mut cumulative: Vec<u64> = Vec::with_capacity(nodes as usize);
    let mut total = 0u64;
    for i in 0..nodes {
        let w = (1e9 / ((i + 1) as f64).powf(s)).round() as u64;
        total += w.max(1);
        cumulative.push(total);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, edges as usize);
    let mut attempts = 0u64;
    let max_attempts = edges.saturating_mul(20).max(1000);
    while (rel.len() as u64) < edges && attempts < max_attempts {
        attempts += 1;
        let pick = rng.gen_below(total);
        let a = cumulative.partition_point(|&c| c <= pick) as u64;
        if a + 1 >= nodes {
            continue; // the last node has no higher-numbered target
        }
        let b = a + 1 + rng.gen_below(nodes - a - 1);
        rel.insert_unchecked(ituple![a as i64, b as i64]);
    }
    rel
}

/// A layered DAG: `layers` layers of `width` nodes, every node wired to
/// `fanout` random nodes of the next layer. Node id = `layer * width +
/// position`. Models the bushy, bounded-depth workloads where parallel TC
/// shines.
pub fn layered(layers: u64, width: u64, fanout: u64, seed: u64) -> Relation {
    assert!(layers >= 2 && width >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rel = Relation::new(2);
    for layer in 0..layers - 1 {
        for pos in 0..width {
            let from = (layer * width + pos) as i64;
            for _ in 0..fanout {
                let to = ((layer + 1) * width + rng.gen_below(width)) as i64;
                rel.insert_unchecked(ituple![from, to]);
            }
        }
    }
    rel
}

/// A two-dimensional grid: node `(r, c)` (id `r*cols + c`) has edges right
/// and down. Diameter `rows + cols`, many alternative paths — the
/// duplicate-heavy workload where non-redundancy matters.
pub fn grid(rows: u64, cols: u64) -> Relation {
    let mut rel = Relation::new(2);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as i64;
            if c + 1 < cols {
                rel.insert_unchecked(ituple![id, id + 1]);
            }
            if r + 1 < rows {
                rel.insert_unchecked(ituple![id, id + cols as i64]);
            }
        }
    }
    rel
}

/// Arity-2 helper: the set of distinct node ids appearing in `edges`.
pub fn nodes_of(edges: &Relation) -> Vec<Tuple> {
    let mut seen = gst_common::FxHashSet::default();
    for t in edges.iter() {
        seen.insert(t.get(0));
        seen.insert(t.get(1));
    }
    let mut v: Vec<Tuple> = seen.into_iter().map(|x| Tuple::new(&[x])).collect();
    v.sort();
    v
}

/// Up/down/flat input for the same-generation program over a complete
/// binary tree of `depth`: `up(child, parent)`, `down = up⁻¹`,
/// `flat(x, x)` on the root.
pub fn same_generation_tree(depth: u32) -> (Relation, Relation, Relation) {
    let parent_child = binary_tree(depth);
    let mut up = Relation::new(2);
    let mut down = Relation::new(2);
    for t in parent_child.iter() {
        up.insert_unchecked(Tuple::new(&[t.get(1), t.get(0)]));
        down.insert_unchecked(t.clone());
    }
    let flat: Relation = [ituple![1, 1]].into_iter().collect();
    (up, down, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts() {
        let c = chain(10);
        assert_eq!(c.len(), 10);
        assert!(c.contains(&ituple![0, 1]));
        assert!(c.contains(&ituple![9, 10]));
    }

    #[test]
    fn cycle_wraps() {
        let c = cycle(5);
        assert_eq!(c.len(), 5);
        assert!(c.contains(&ituple![4, 0]));
    }

    #[test]
    fn binary_tree_edge_count() {
        assert_eq!(binary_tree(1).len(), 0);
        assert_eq!(binary_tree(2).len(), 2);
        assert_eq!(binary_tree(4).len(), 14);
    }

    #[test]
    fn star_shape() {
        let s = star(6);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|t| t.get(0) == gst_common::Value::Int(0)));
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(50, 100, 7);
        let b = random_digraph(50, 100, 7);
        assert!(a.set_eq(&b));
        let c = random_digraph(50, 100, 8);
        assert!(!a.set_eq(&c));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn random_digraph_has_no_self_loops() {
        let g = random_digraph(10, 40, 3);
        assert!(g.iter().all(|t| t.get(0) != t.get(1)));
    }

    #[test]
    fn random_digraph_saturates_small_graphs() {
        // 3 nodes admit at most 6 non-loop edges; asking for more stops.
        let g = random_digraph(3, 100, 1);
        assert!(g.len() <= 6);
    }

    #[test]
    fn zipf_digraph_is_deterministic_and_loop_free() {
        let a = zipf_digraph(100, 300, 15, 5);
        let b = zipf_digraph(100, 300, 15, 5);
        assert!(a.set_eq(&b));
        assert!(a.iter().all(|t| t.get(0) != t.get(1)));
        let c = zipf_digraph(100, 300, 15, 6);
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn zipf_digraph_is_actually_skewed() {
        // With s = 2 over 100 nodes, the top source must beat the uniform
        // out-degree expectation (edges/nodes) by a wide margin and sit at
        // the head of the distribution.
        let g = zipf_digraph(100, 300, 20, 42);
        let mut outdeg = vec![0u64; 100];
        for t in g.iter() {
            outdeg[t.get(0).as_int().unwrap() as usize] += 1;
        }
        let mean = (g.len() as u64 / 100).max(1);
        let max = *outdeg.iter().max().unwrap();
        assert!(max >= 10 * mean, "max out-degree {max} not skewed vs mean {mean}");
        let argmax = outdeg.iter().enumerate().max_by_key(|(_, &d)| d).unwrap().0;
        assert_eq!(argmax, 0, "the hot source should be node 0");
    }

    #[test]
    fn layered_respects_structure() {
        let g = layered(3, 4, 2, 11);
        for t in g.iter() {
            let from = t.get(0).as_int().unwrap() as u64;
            let to = t.get(1).as_int().unwrap() as u64;
            assert_eq!(to / 4, from / 4 + 1, "edges go one layer down");
        }
    }

    #[test]
    fn grid_edge_count() {
        // rows*cols nodes; right edges rows*(cols-1); down (rows-1)*cols.
        let g = grid(3, 4);
        assert_eq!(g.len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn nodes_of_collects_endpoints() {
        let c = chain(3);
        assert_eq!(nodes_of(&c).len(), 4);
    }

    #[test]
    fn same_generation_tree_shapes() {
        let (up, down, flat) = same_generation_tree(3);
        assert_eq!(up.len(), 6);
        assert_eq!(down.len(), 6);
        assert_eq!(flat.len(), 1);
        assert!(up.contains(&ituple![2, 1]));
        assert!(down.contains(&ituple![1, 2]));
    }
}
