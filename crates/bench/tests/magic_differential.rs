//! Differential acceptance suite for demand-driven point queries
//! (magic sets on the parallel runtime; DESIGN.md §15).
//!
//! The rewrite claims that for any bound-first goal, running the magic
//! program under the demand-partitioned §7 scheme yields *exactly* the
//! tuples a full-closure run would yield filtered to the goal — never a
//! subset, never extras from transitively demanded bindings. These
//! tests check that equality the brute-force way: seeded chain / grid /
//! random / zipf EDBs, random query constants, left- and right-linear
//! recursion, on all three transports (threaded, deterministic
//! simulation, TCP loopback), through injected crash/recovery, and
//! composed with incremental update batches.
//!
//! Tests prefixed `fast_` form the tier the CI `magic-smoke` job runs
//! on every push; the rest ride the full suite.

use std::sync::Arc;

use gst_common::{ituple, SmallRng, Tuple, Value};
use gst_core::prelude::{compile_demand, decode_constraint, UpdateBatch, UpdateSession};
use gst_eval::seminaive_eval;
use gst_frontend::magic::{magic_rewrite, MagicRewrite};
use gst_frontend::{Atom, Term, Variable};
use gst_runtime::{
    FaultPlan, InProcessLauncher, NetConfig, NetCoordinator, RuntimeConfig, Transport,
};
use gst_storage::{Database, Relation};
use gst_workloads::{
    chain, grid, linear_ancestor, random_digraph, right_linear_ancestor, zipf_digraph, Fixture,
};

/// The EDB shapes under test, with the node universe a random query
/// constant is drawn from. Small on purpose: every case also runs a
/// sequential full closure as its oracle.
fn workloads() -> Vec<(&'static str, Relation, u64)> {
    vec![
        ("chain", chain(24), 26),
        ("grid", grid(4, 5), 20),
        ("random", random_digraph(40, 90, 11), 40),
        ("zipf", zipf_digraph(80, 64, 16, 7), 80),
    ]
}

/// Both recursion shapes: demand stays at the seed under right-linear
/// rules and propagates down reachability under left-linear ones.
fn programs() -> Vec<(&'static str, Fixture)> {
    vec![
        ("left-linear", linear_ancestor()),
        ("right-linear", right_linear_ancestor()),
    ]
}

/// Bound-first point query `anc(c, Y)`.
fn point_query(fx: &Fixture, c: i64) -> Atom {
    let y = Variable(fx.program.interner.intern("QY"));
    Atom::new(fx.output_id().0, vec![Term::Const(Value::Int(c)), Term::Var(y)])
}

/// The full closure of the *original* program, filtered to the goal —
/// the ground truth every demand-bounded run must reproduce exactly.
fn oracle(fx: &Fixture, db: &Database, rw: &MagicRewrite) -> Relation {
    let seq = seminaive_eval(&fx.program, db).unwrap();
    filter_answers(&seq.relation(fx.output_id()), rw)
}

fn filter_answers(rel: &Relation, rw: &MagicRewrite) -> Relation {
    let mut out = Relation::new(rw.answer.arity);
    for t in rel.iter() {
        if rw.answer_matches(t) {
            out.insert(t.clone()).unwrap();
        }
    }
    out
}

/// Fast tier: every workload × both recursion shapes × random query
/// constants on the threaded transport at N=3 — the demand-bounded
/// answer must equal the filtered full closure, and across the sweep
/// some queries must be non-empty (a vacuously empty sweep proves
/// nothing).
#[test]
fn fast_point_queries_match_filtered_closure_threaded() {
    let mut rng = SmallRng::seed_from_u64(0x3a61c);
    let mut nonempty = 0usize;
    for (pname, fx) in &programs() {
        for (wname, data, nodes) in &workloads() {
            let db = fx.database(data);
            for _ in 0..4 {
                let c = rng.gen_below(*nodes) as i64;
                let rw = magic_rewrite(&fx.program, &point_query(fx, c)).unwrap();
                let outcome = compile_demand(&rw, &db, 3).unwrap().run().unwrap();
                let got =
                    filter_answers(&outcome.relation((rw.answer.name, rw.answer.arity)), &rw);
                let want = oracle(fx, &db, &rw);
                assert!(
                    got.set_eq(&want),
                    "{pname}/{wname} c={c}: demand answers diverged ({} vs {} tuples)",
                    got.len(),
                    want.len()
                );
                nonempty += usize::from(!want.is_empty());
            }
        }
    }
    assert!(nonempty >= 8, "only {nonempty} non-empty queries; sweep is vacuous");
}

/// Fast tier: the deterministic simulation transport with an injected
/// mid-run crash marked recoverable — the supervisor restarts the
/// worker, peers replay, and the demand-bounded answer still equals the
/// filtered closure bit-for-bit.
#[test]
fn fast_simulated_crash_recovery_matches() {
    let mut rng = SmallRng::seed_from_u64(0xfa117);
    let config = RuntimeConfig::default();
    let mut crashes = 0u64;
    for (pname, fx) in &programs() {
        for (wname, data, nodes) in &workloads() {
            let db = fx.database(data);
            let c = rng.gen_below(*nodes) as i64;
            let rw = magic_rewrite(&fx.program, &point_query(fx, c)).unwrap();
            let scheme = compile_demand(&rw, &db, 3).unwrap();
            let want = oracle(fx, &db, &rw);
            for (fname, plan) in [
                ("jitter", FaultPlan::parse("jitter").unwrap()),
                ("crash+recover", FaultPlan::parse("chaos,crash=1@40,recover").unwrap()),
            ] {
                let seed = rng.gen_below(1 << 20);
                let outcome = scheme.run_simulated_with(seed, plan, &config).unwrap();
                let got =
                    filter_answers(&outcome.relation((rw.answer.name, rw.answer.arity)), &rw);
                assert!(
                    got.set_eq(&want),
                    "{pname}/{wname}/{fname} c={c} seed={seed}: recovered answer diverged"
                );
                if fname == "crash+recover" {
                    crashes += outcome.stats.restarts as u64;
                }
            }
        }
    }
    // A demand-bounded run can finish before virtual time 40, so the
    // crash cannot land in every case — but it must land somewhere, or
    // the recovery half of this sweep proved nothing.
    assert!(crashes >= 1, "no crash plan ever fired across the sweep (vacuous)");
}

/// TCP loopback (full wire protocol, in-process workers): the magic
/// program's constraints decode on the far side of a real socket and
/// the pooled answer equals the filtered closure.
#[test]
fn tcp_loopback_matches_filtered_closure() {
    let mut rng = SmallRng::seed_from_u64(0x7c9);
    let config = RuntimeConfig::default();
    for (pname, fx) in &programs() {
        for (wname, data, nodes) in [
            ("random", random_digraph(40, 90, 11), 40u64),
            ("zipf", zipf_digraph(80, 64, 16, 7), 80),
        ] {
            let db = fx.database(&data);
            let c = rng.gen_below(nodes) as i64;
            let rw = magic_rewrite(&fx.program, &point_query(fx, c)).unwrap();
            let scheme = compile_demand(&rw, &db, 3).unwrap();
            let net = NetCoordinator::new(
                Arc::new(InProcessLauncher { decoder: Some(decode_constraint) }),
                NetConfig::default(),
            );
            let outcome = net.execute(scheme.workers.clone(), &config).unwrap();
            let got = filter_answers(&outcome.relation((rw.answer.name, rw.answer.arity)), &rw);
            assert!(
                got.set_eq(&oracle(fx, &db, &rw)),
                "{pname}/{wname} c={c}: tcp-loopback answer diverged"
            );
        }
    }
}

/// One seeded random update batch: mostly deletes of live edges plus
/// inserts of random pairs from the node universe, with an occasional
/// absent-tuple delete (a no-op).
fn random_batch(
    rng: &mut SmallRng,
    session: &UpdateSession,
    edge: (gst_common::SymbolId, usize),
    nodes: u64,
) -> UpdateBatch {
    let live: Vec<Tuple> = session
        .edb()
        .relation(edge)
        .map(|r| r.iter().cloned().collect())
        .unwrap_or_default();
    let mut batch = UpdateBatch::default();
    for _ in 0..rng.gen_inclusive(1, 4) {
        match rng.gen_below(8) {
            0..=2 => {
                if let Some(t) = rng.choose(&live) {
                    batch.deletes.push((edge, t.clone()));
                }
            }
            3 => {
                let (a, b) = (rng.gen_below(nodes) as i64, rng.gen_below(nodes) as i64);
                batch.deletes.push((edge, ituple![a + 500, b + 500]));
            }
            _ => {
                let (a, b) = (rng.gen_below(nodes) as i64, rng.gen_below(nodes) as i64);
                batch.inserts.push((edge, ituple![a, b]));
            }
        }
    }
    batch
}

/// Composition with incremental maintenance: an update session over the
/// *magic* program keeps the demand-bounded view live through base-fact
/// insert/delete batches — after every batch the maintained answer
/// equals a from-scratch full closure of the original program over the
/// updated base, filtered to the goal. Threaded and simulated.
#[test]
fn update_batches_maintain_the_demand_bounded_view() {
    for (tname, sim_seed) in [("threaded", None), ("sim", Some(0xbeef_u64))] {
        let transport: Box<dyn Transport> = match sim_seed {
            None => Box::new(gst_runtime::ThreadedTransport),
            Some(s) => Box::new(gst_runtime::SimTransport::new(s)),
        };
        let config = RuntimeConfig::default();
        for (pname, fx) in &programs() {
            for (wname, data, nodes) in
                [("chain", chain(10), 14u64), ("random", random_digraph(14, 26, 5), 16)]
            {
                let db = fx.database(&data);
                let edge = fx.input_id(0);
                let c = (nodes / 2) as i64;
                let rw = magic_rewrite(&fx.program, &point_query(fx, c)).unwrap();
                let scheme = compile_demand(&rw, &db, 3).unwrap();
                let mut seeded = db.clone();
                seeded
                    .insert(
                        (rw.seed_predicate.name, rw.seed_predicate.arity),
                        rw.seed_fact.clone(),
                    )
                    .unwrap();
                let mut session =
                    UpdateSession::new(&scheme, &rw.program, &seeded).unwrap();
                session.initialize(transport.as_ref(), &config).unwrap();

                let mut rng = SmallRng::seed_from_u64(0xca11 ^ nodes);
                for round in 1..=3 {
                    let batch = random_batch(&mut rng, &session, edge, nodes);
                    session.apply(&batch, transport.as_ref(), &config).unwrap();
                    let maintained = filter_answers(
                        &session.answer((rw.answer.name, rw.answer.arity)),
                        &rw,
                    );
                    let want = filter_answers(
                        &seminaive_eval(&fx.program, session.edb()).unwrap().relation(fx.output_id()),
                        &rw,
                    );
                    assert!(
                        maintained.set_eq(&want),
                        "{tname}/{pname}/{wname} c={c} round {round}: maintained \
                         demand view diverged ({} vs {} tuples) after {batch:?}",
                        maintained.len(),
                        want.len()
                    );
                }
            }
        }
    }
}

/// Ground goals (both arguments bound) survive the whole pipeline: the
/// fully bound adornment runs in parallel and answers with exactly the
/// queried tuple or nothing.
#[test]
fn ground_goals_answer_membership_exactly() {
    let fx = linear_ancestor();
    let db = fx.database(&grid(4, 4));
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let closure = seq.relation(fx.output_id());
    let mut rng = SmallRng::seed_from_u64(0x96d);
    for _ in 0..6 {
        let (a, b) = (rng.gen_below(16) as i64, rng.gen_below(16) as i64);
        let goal = Atom::new(
            fx.output_id().0,
            vec![Term::Const(Value::Int(a)), Term::Const(Value::Int(b))],
        );
        let rw = magic_rewrite(&fx.program, &goal).unwrap();
        let outcome = compile_demand(&rw, &db, 3).unwrap().run().unwrap();
        let got = filter_answers(&outcome.relation((rw.answer.name, rw.answer.arity)), &rw);
        let member = closure.contains(&ituple![a, b]);
        assert_eq!(
            got.len(),
            usize::from(member),
            "anc({a}, {b}): membership answer wrong (closure says {member})"
        );
    }
}
