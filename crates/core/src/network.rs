//! Minimal network graphs (paper §5, Definition 3, Examples 6–7).
//!
//! Given a linear sirup, discriminating sequences, and a discriminating
//! function built from a bit-valued `g` (a [`BitVector`] or a [`Linear`]
//! combination), the set of channels that can *ever* carry a tuple is
//! data-independent and computable at compile time: abstract every value
//! to its `g`-bit and enumerate.
//!
//! A channel `i → j` can carry a tuple `t` iff
//!
//! * `t` is **consumed** at `j`: `j = h(t|v(r))`, reading `v(r)` off the
//!   positions those variables occupy in the body `t`-atom `Ȳ`;
//! * `t` is **produced** at `i`, either
//!   - by the **exit rule** — `t` instantiates the exit head `Z̄` and
//!     `i = h'(v(e))`, or
//!   - by the **recursive rule** — `t` instantiates the head `X̄` and
//!     `i = h(v(r))` of the *producing* firing: `v(r)` variables found in
//!     `X̄` take the tuple's values; the rest (the paper's `a₄`/`Z`) are
//!     free.
//!
//! Abstracting each distinct value slot to one bit turns both conditions
//! into the constraint systems the paper writes out — equations (1)–(3)
//! of Example 7 — and enumerating `{0,1}^slots` solves them exactly. This
//! reproduces Figure 3 (Example 6) and Figure 4 (Example 7) and, for any
//! other sirup in the supported family, yields its minimal network.

use std::collections::BTreeSet;

use gst_common::{Error, Result};
use gst_frontend::{LinearSirup, Term, Variable};

use crate::discriminator::{BitVector, Linear};

/// A directed graph over processors: which channels may carry data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkGraph {
    /// Number of processors.
    pub processors: usize,
    /// Possible communication edges `(i, j)`, `i ≠ j`, sorted.
    pub edges: BTreeSet<(usize, usize)>,
    /// Display names of processors (e.g. `(00)` or the linear value `-1`).
    pub labels: Vec<String>,
}

impl NetworkGraph {
    /// True if `i → j` may carry data.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.edges.contains(&(i, j))
    }

    /// Check that every observed channel is predicted by the graph — the
    /// soundness direction, asserted against real executions in tests.
    pub fn covers(&self, used: &[(usize, usize)]) -> bool {
        used.iter().all(|&(i, j)| self.has_edge(i, j))
    }

    /// Degree summary: how many of the `n(n-1)` possible channels exist.
    pub fn density(&self) -> (usize, usize) {
        (self.edges.len(), self.processors * self.processors.saturating_sub(1))
    }

    /// Render the edge list in the paper's figure style.
    pub fn display(&self) -> String {
        if self.edges.is_empty() {
            return "(no interprocessor channels)".to_string();
        }
        self.edges
            .iter()
            .map(|&(i, j)| format!("{} → {}", self.labels[i], self.labels[j]))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A discriminating function abstracted to `g`-bits: given one bit per
/// sequence element, produce the processor index.
pub trait SymbolicDisc {
    /// Number of processors.
    fn processors(&self) -> usize;
    /// Processor for a bit instantiation of the discriminating sequence.
    fn apply(&self, bits: &[u8]) -> usize;
    /// Display name of a processor.
    fn label(&self, index: usize) -> String;
}

impl SymbolicDisc for BitVector {
    fn processors(&self) -> usize {
        Discriminatable::processors(self)
    }
    fn apply(&self, bits: &[u8]) -> usize {
        bits.iter().fold(0usize, |acc, &b| (acc << 1) | b as usize)
    }
    fn label(&self, index: usize) -> String {
        self.processor_name(index)
    }
}

impl SymbolicDisc for Linear {
    fn processors(&self) -> usize {
        self.processor_values().len()
    }
    fn apply(&self, bits: &[u8]) -> usize {
        let sum: i64 = bits
            .iter()
            .zip(self.coefficients())
            .map(|(&b, &c)| c * b as i64)
            .sum();
        self.processor_of_value(sum)
            .expect("bit assignments yield achievable sums")
    }
    fn label(&self, index: usize) -> String {
        self.processor_values()[index].to_string()
    }
}

// Disambiguation helper: `BitVector` implements both the runtime
// `Discriminator` and the compile-time `SymbolicDisc` traits, which both
// have a `processors` method.
use crate::discriminator::Discriminator as Discriminatable;

/// Where a discriminating variable's bit comes from during enumeration.
#[derive(Debug, Clone, Copy)]
enum BitSource {
    /// Bit of tuple position `p`.
    Tuple(usize),
    /// A free slot (value not determined by the tuple).
    Free(usize),
}

/// Derive the minimal network graph for `sirup` under sequences `v_r`
/// (for the recursive rule) and `v_e` (for the exit rule) and symbolic
/// function `h` (used for both `h` and `h'`, as in the paper's examples).
///
/// Requirements (checked): every `v_r` variable occurs in the body
/// `t`-atom `Ȳ`; every `v_e` variable occurs in the exit rule.
pub fn derive_network(
    sirup: &LinearSirup,
    v_r: &[Variable],
    v_e: &[Variable],
    h: &dyn SymbolicDisc,
) -> Result<NetworkGraph> {
    let m = sirup.head.len();
    let position_in = |terms: &[Term], v: Variable| -> Option<usize> {
        terms
            .iter()
            .position(|t| matches!(t, Term::Var(tv) if *tv == v))
    };

    // Consumption: v(r) over the body t-atom Ȳ.
    let consume: Vec<BitSource> = v_r
        .iter()
        .map(|&v| {
            position_in(&sirup.recursive_args, v)
                .map(BitSource::Tuple)
                .ok_or_else(|| {
                    Error::Discriminator(
                        "network derivation requires every v(r) variable to occur in the \
                         recursive body t-atom"
                            .into(),
                    )
                })
        })
        .collect::<Result<_>>()?;

    // Production by the exit rule: v(e) over the exit head Z̄; variables
    // not in the head are free (bound only by the exit body).
    let mut free_count = 0usize;
    let mut fresh = || {
        let k = free_count;
        free_count += 1;
        BitSource::Free(k)
    };
    let exit_produce: Vec<BitSource> = v_e
        .iter()
        .map(|&v| {
            position_in(&sirup.exit_head, v)
                .map(BitSource::Tuple)
                .unwrap_or_else(&mut fresh)
        })
        .collect();

    // Production by the recursive rule: v(r) over the head X̄; variables
    // not in the head (the paper's Z/a₄) are free.
    let rec_produce: Vec<BitSource> = v_r
        .iter()
        .map(|&v| {
            position_in(&sirup.head, v)
                .map(BitSource::Tuple)
                .unwrap_or_else(&mut fresh)
        })
        .collect();

    let n = h.processors();
    let mut edges = BTreeSet::new();
    let total_bits = m + free_count;
    assert!(total_bits <= 24, "enumeration bounded to 2^24 assignments");
    for assignment in 0u64..(1u64 << total_bits) {
        let bit = |src: &BitSource| -> u8 {
            let idx = match src {
                BitSource::Tuple(p) => *p,
                BitSource::Free(k) => m + *k,
            };
            ((assignment >> idx) & 1) as u8
        };
        let j = h.apply(&consume.iter().map(&bit).collect::<Vec<u8>>());
        let i_exit = h.apply(&exit_produce.iter().map(&bit).collect::<Vec<u8>>());
        let i_rec = h.apply(&rec_produce.iter().map(&bit).collect::<Vec<u8>>());
        if i_exit != j {
            edges.insert((i_exit, j));
        }
        if i_rec != j {
            edges.insert((i_rec, j));
        }
    }

    Ok(NetworkGraph {
        processors: n,
        edges,
        labels: (0..n).map(|k| h.label(k)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::BitFn;
    use gst_frontend::parse_program;

    fn sirup(src: &str) -> LinearSirup {
        LinearSirup::from_program(&parse_program(src).unwrap().program).unwrap()
    }

    fn vars(s: &LinearSirup, names: &[&str]) -> Vec<Variable> {
        names
            .iter()
            .map(|n| Variable(s.program.interner.get(n).unwrap()))
            .collect()
    }

    /// Paper Example 6 / Figure 3: p(X,Y) :- p(Y,Z), r(X,Z) with
    /// h(a,b) = (g(a), g(b)) on four processors.
    #[test]
    fn figure3_example6_network() {
        let s = sirup("p(X,Y) :- q(X,Y).\np(X,Y) :- p(Y,Z), r(X,Z).");
        let v_r = vars(&s, &["Y", "Z"]);
        let v_e = vars(&s, &["X", "Y"]);
        let h = BitVector::new(BitFn::new(1), 2);
        let net = derive_network(&s, &v_r, &v_e, &h).unwrap();
        // Processors (00)=0, (01)=1, (10)=2, (11)=3.
        // Derived in the paper: (00)→(10); by symmetry (11)→(01);
        // (01) and (10) may reach both halves.
        let expect: BTreeSet<(usize, usize)> = [
            (0, 2),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(net.edges, expect);
        // The paper's explicit negative claims:
        assert!(!net.has_edge(0, 1), "(00) never sends to (01)");
        assert!(!net.has_edge(0, 3), "(00) never sends to (11)");
        assert!(net.has_edge(0, 2), "(00) may send to (10)");
        assert_eq!(net.labels[0], "(00)");
        assert_eq!(net.labels[2], "(10)");
    }

    /// Paper Example 7 / Figure 4: p(U,V,W) :- p(V,W,Z), q(U,Z) with
    /// h(a₁,a₂,a₃) = g(a₁) − g(a₂) + g(a₃), P = {−1, 0, 1, 2}.
    #[test]
    fn figure4_example7_network() {
        let s = sirup("p(U,V,W) :- s(U,V,W).\np(U,V,W) :- p(V,W,Z), q(U,Z).");
        let v_r = vars(&s, &["V", "W", "Z"]);
        let v_e = vars(&s, &["U", "V", "W"]);
        let h = Linear::new(BitFn::new(1), vec![1, -1, 1]);
        let net = derive_network(&s, &v_r, &v_e, &h).unwrap();
        // Solve x1−x2+x3=v, x2−x3+x4=u over {0,1}⁴ by hand:
        // enumerate (x1,x2,x3,x4) → (u,v):
        let mut expect = BTreeSet::new();
        let val_index = |v: i64| match v {
            -1 => 0usize,
            0 => 1,
            1 => 2,
            2 => 3,
            _ => unreachable!(),
        };
        for bits in 0..16u32 {
            let x = |k: u32| ((bits >> k) & 1) as i64;
            let v = x(0) - x(1) + x(2);
            let u = x(1) - x(2) + x(3);
            let (i, j) = (val_index(u), val_index(v));
            if i != j {
                expect.insert((i, j));
            }
        }
        // The exit-rule case adds no edges (equations (1)&(2) force i=j).
        assert_eq!(net.edges, expect);
        assert_eq!(net.labels, vec!["-1", "0", "1", "2"]);
        // Spot checks from the equations: u=2 requires x2=1,x3=0,x4=1 →
        // v = x1−1+0 ∈ {−1, 0}: processor "2" only reaches "−1" and "0".
        assert!(net.has_edge(3, 0));
        assert!(net.has_edge(3, 1));
        assert!(!net.has_edge(3, 2));
        assert!(!net.has_edge(3, 3 /* self excluded anyway */));
    }

    /// Ancestor with v(r) = ⟨Y⟩ (Example 1's choice) under a 1-bit
    /// function: production and consumption agree on position 2, so the
    /// network must be empty — Theorem 3 seen through the §5 lens.
    #[test]
    fn ancestor_with_cycle_choice_needs_no_channels() {
        let s = sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        let v_r = vars(&s, &["Y"]);
        let v_e = vars(&s, &["Y"]);
        let h = BitVector::new(BitFn::new(1), 1);
        let net = derive_network(&s, &v_r, &v_e, &h).unwrap();
        assert!(net.edges.is_empty());
        assert_eq!(net.display(), "(no interprocessor channels)");
    }

    /// Ancestor with v(r) = ⟨Z⟩ (Example 3's choice): Z is not a head
    /// variable, so the producer's bit is free and any processor may send
    /// to any other — the price of Example 3's fragmentation freedom.
    #[test]
    fn ancestor_with_z_choice_is_complete() {
        let s = sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        let v_r = vars(&s, &["Z"]);
        let v_e = vars(&s, &["X"]);
        let h = BitVector::new(BitFn::new(1), 1);
        let net = derive_network(&s, &v_r, &v_e, &h).unwrap();
        let expect: BTreeSet<(usize, usize)> = [(0, 1), (1, 0)].into_iter().collect();
        assert_eq!(net.edges, expect);
        let (have, possible) = net.density();
        assert_eq!((have, possible), (2, 2));
    }

    #[test]
    fn v_r_outside_body_atom_is_rejected() {
        let s = sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        let v_r = vars(&s, &["X"]); // X not in anc(Z,Y)
        let v_e = vars(&s, &["X"]);
        let h = BitVector::new(BitFn::new(1), 1);
        assert!(derive_network(&s, &v_r, &v_e, &h).is_err());
    }

    /// A sirup whose v(e) variable does not occur in the exit head: the
    /// producer bit is free, exercising the fresh-slot path for exit
    /// production.
    #[test]
    fn free_exit_slot_widens_the_network() {
        // t(X) :- s(X, W) — W constrains placement but not the tuple.
        let s = sirup("t(X) :- s(X, W).\nt(X) :- t(Y), e(Y, X).");
        let i = &s.program.interner;
        let w = Variable(i.get("W").unwrap());
        let y = Variable(i.get("Y").unwrap());
        let h = BitVector::new(BitFn::new(1), 1);
        // v(r) = ⟨Y⟩ over Ȳ = (Y): consumption is determined by the tuple;
        // v(e) = ⟨W⟩ is free: init tuples can land anywhere.
        let net = derive_network(&s, &[y], &[w], &h).unwrap();
        // Exit production: i free, j = bit(t0) → both cross edges exist.
        let expect: BTreeSet<(usize, usize)> = [(0, 1), (1, 0)].into_iter().collect();
        assert_eq!(net.edges, expect);
    }

    /// Same-generation: v(r) = ⟨U⟩ over the body sg-atom; U does not
    /// appear in the head, so recursive production is fully free.
    #[test]
    fn same_generation_network_is_complete() {
        let s = sirup(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y).",
        );
        let i = &s.program.interner;
        let u = Variable(i.get("U").unwrap());
        let x = Variable(i.get("X").unwrap());
        let h = BitVector::new(BitFn::new(1), 1);
        let net = derive_network(&s, &[u], &[x], &h).unwrap();
        let (have, possible) = net.density();
        assert_eq!((have, possible), (2, 2), "no compile-time pruning possible");
    }

    #[test]
    fn covers_checks_subset() {
        let net = NetworkGraph {
            processors: 3,
            edges: [(0, 1), (1, 2)].into_iter().collect(),
            labels: vec!["0".into(), "1".into(), "2".into()],
        };
        assert!(net.covers(&[(0, 1)]));
        assert!(net.covers(&[]));
        assert!(!net.covers(&[(2, 0)]));
        assert!(net.display().contains("0 → 1"));
    }
}
