//! Fixed-arity tuples of [`Value`]s.
//!
//! Tuples are the unit of everything: facts, deltas, channel messages,
//! index keys. Almost every relation in the paper's workloads has arity 2
//! or 3 (`par`, `anc`, the chain sirup's `p/3`), so [`Tuple`] stores up to
//! [`INLINE_CAP`] values inline and only heap-allocates beyond that; the
//! heap representation is an `Arc<[Value]>` so wide tuples still clone in
//! O(1). Equality and hashing are by content, independent of
//! representation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use crate::interner::Interner;
use crate::value::Value;

/// Maximum arity stored without heap allocation.
pub const INLINE_CAP: usize = 3;

#[derive(Clone)]
enum Repr {
    Inline { len: u8, vals: [Value; INLINE_CAP] },
    Heap(Arc<[Value]>),
}

/// An immutable tuple of constants.
#[derive(Clone)]
pub struct Tuple {
    repr: Repr,
}

impl Tuple {
    /// Build a tuple from a slice of values.
    pub fn new(values: &[Value]) -> Self {
        if values.len() <= INLINE_CAP {
            let mut vals = [Value::Int(0); INLINE_CAP];
            vals[..values.len()].copy_from_slice(values);
            Tuple {
                repr: Repr::Inline {
                    len: values.len() as u8,
                    vals,
                },
            }
        } else {
            Tuple {
                repr: Repr::Heap(values.into()),
            }
        }
    }

    /// Build from an owned `Vec`, avoiding a copy for wide tuples.
    pub fn from_vec(values: Vec<Value>) -> Self {
        if values.len() <= INLINE_CAP {
            Self::new(&values)
        } else {
            Tuple {
                repr: Repr::Heap(values.into()),
            }
        }
    }

    /// The empty (arity-0) tuple.
    pub fn unit() -> Self {
        Self::new(&[])
    }

    /// Tuple arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.as_slice().len()
    }

    /// View as a slice of values.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(h) => h,
        }
    }

    /// The value at `index`, panicking if out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        self.as_slice()[index]
    }

    /// Project the tuple onto the given column indexes.
    ///
    /// Used by indexes (key extraction) and by discriminating functions
    /// (extracting the ground instance of the discriminating sequence).
    pub fn project(&self, columns: &[usize]) -> Tuple {
        let slice = self.as_slice();
        if columns.len() <= INLINE_CAP {
            let mut vals = [Value::Int(0); INLINE_CAP];
            for (out, &c) in vals.iter_mut().zip(columns) {
                *out = slice[c];
            }
            Tuple {
                repr: Repr::Inline {
                    len: columns.len() as u8,
                    vals,
                },
            }
        } else {
            Tuple::from_vec(columns.iter().map(|&c| slice[c]).collect())
        }
    }

    /// True if the tuple required a heap allocation (diagnostics/tests).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Render using `interner` for symbols: `(a, b, 3)`.
    pub fn display(&self, interner: &Interner) -> String {
        let cols: Vec<String> = self.as_slice().iter().map(|v| v.display(interner)).collect();
        format!("({})", cols.join(", "))
    }
}

impl Deref for Tuple {
    type Target = [Value];
    #[inline]
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl PartialEq for Tuple {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Tuple {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[Value]> for Tuple {
    fn from(values: &[Value]) -> Self {
        Tuple::new(values)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::from_vec(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::from_vec(iter.into_iter().collect())
    }
}

/// Build an integer tuple quickly in tests and examples: `ituple![1, 2]`.
#[macro_export]
macro_rules! ituple {
    ($($x:expr),* $(,)?) => {
        $crate::Tuple::new(&[$($crate::Value::Int($x)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::hash_one;

    fn vals(n: usize) -> Vec<Value> {
        (0..n as i64).map(Value::Int).collect()
    }

    #[test]
    fn small_tuples_are_inline() {
        for n in 0..=INLINE_CAP {
            assert!(Tuple::new(&vals(n)).is_inline(), "arity {n}");
        }
        assert!(!Tuple::new(&vals(INLINE_CAP + 1)).is_inline());
    }

    #[test]
    fn equality_is_by_content_across_reprs() {
        // Force a heap repr of an inline-sized tuple via projection of a
        // wide tuple... projection keeps it inline, so compare same-content
        // tuples built both ways instead.
        let wide = Tuple::new(&vals(5));
        let narrow = wide.project(&[0, 1, 2, 3, 4]);
        assert_eq!(wide, narrow);
        assert_eq!(hash_one(&wide), hash_one(&narrow));
    }

    #[test]
    fn arity_and_get() {
        let t = ituple![10, 20, 30];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Value::Int(20));
        assert_eq!(&t[..2], &[Value::Int(10), Value::Int(20)]);
    }

    #[test]
    fn unit_tuple() {
        let t = Tuple::unit();
        assert_eq!(t.arity(), 0);
        assert_eq!(t, ituple![]);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = ituple![1, 2, 3];
        assert_eq!(t.project(&[2, 0]), ituple![3, 1]);
        assert_eq!(t.project(&[1, 1, 1]), ituple![2, 2, 2]);
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn project_wide_output() {
        let t = Tuple::new(&vals(6));
        let p = t.project(&[0, 1, 2, 3, 4]);
        assert_eq!(p.arity(), 5);
        assert_eq!(p.get(4), Value::Int(4));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(ituple![1, 2] < ituple![1, 3]);
        assert!(ituple![1] < ituple![1, 0]);
        assert!(ituple![2] > ituple![1, 9]);
    }

    #[test]
    fn from_vec_and_iterator() {
        let t: Tuple = (0..4).map(Value::Int).collect();
        assert_eq!(t.arity(), 4);
        assert_eq!(Tuple::from_vec(vals(2)), ituple![0, 1]);
    }

    #[test]
    fn hash_agrees_with_slice_hash() {
        // Required for borrowed lookups keyed by slices elsewhere.
        let t = ituple![4, 5];
        assert_eq!(hash_one(&t), {
            use std::hash::{Hash, Hasher};
            let mut h = crate::FxHasher::default();
            t.as_slice().hash(&mut h);
            h.finish()
        });
    }

    #[test]
    fn display_renders_values() {
        let interner = Interner::new();
        let t = ituple![1, 2];
        assert_eq!(t.display(&interner), "(1, 2)");
    }

    #[test]
    fn clone_of_wide_tuple_is_shallow() {
        let t = Tuple::new(&vals(10));
        let c = t.clone();
        assert_eq!(t, c);
        match (&t.repr, &c.repr) {
            (Repr::Heap(a), Repr::Heap(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected heap reprs"),
        }
    }
}
