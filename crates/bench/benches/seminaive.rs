//! Sequential engine baseline: semi-naive vs naive across workload shapes.

use gst_bench::micro::{BenchmarkId, Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_eval::{naive_eval, seminaive_eval};
use gst_workloads::{chain, grid, linear_ancestor, random_digraph};

fn bench_seminaive(c: &mut Criterion) {
    let fx = linear_ancestor();
    let mut group = c.benchmark_group("seminaive");
    group.sample_size(10);
    for (name, edges) in [
        ("chain-128", chain(128)),
        ("grid-12x12", grid(12, 12)),
        ("random-100x250", random_digraph(100, 250, 1)),
    ] {
        let db = fx.database(&edges);
        group.bench_with_input(BenchmarkId::new("seminaive", name), &db, |b, db| {
            b.iter(|| seminaive_eval(&fx.program, db).unwrap())
        });
    }
    group.finish();
}

fn bench_naive_vs_seminaive(c: &mut Criterion) {
    let fx = linear_ancestor();
    let edges = chain(48);
    let db = fx.database(&edges);
    let mut group = c.benchmark_group("naive-vs-seminaive");
    group.sample_size(10);
    group.bench_function("seminaive/chain-48", |b| {
        b.iter(|| seminaive_eval(&fx.program, &db).unwrap())
    });
    group.bench_function("naive/chain-48", |b| {
        b.iter(|| naive_eval(&fx.program, &db).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_seminaive, bench_naive_vs_seminaive);
criterion_main!(benches);
