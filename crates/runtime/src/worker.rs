//! The per-processor worker, as a transport-agnostic state machine.
//!
//! Implements the paper's §3 execution skeleton:
//!
//! ```text
//! evaluate initialization rule
//! repeat
//!     evaluate processing rules
//!     evaluate sending rules
//!     evaluate receiving rules
//! until "termination"
//! ```
//!
//! Initialization/processing/sending rules run inside the local
//! [`FixpointEngine`]; the *receiving* rules are realized by injecting
//! arriving batches into the inbox predicates; and the asynchrony the
//! paper insists on ("processor i does not wait for data from processor
//! j") falls out of absorbing whatever has arrived before each engine
//! round, never blocking for more.
//!
//! The worker is deliberately **re-entrant**: it owns no channel handles
//! and no event loop. [`WorkerCore::step`] performs exactly one scheduling
//! quantum — absorb pending envelopes, then either run one engine round or
//! handle the termination token — and reports whether it worked, went
//! idle, or terminated. How steps are driven is the transport's business:
//! [`crate::transport::ThreadedTransport`] wraps the core in an OS thread
//! with a blocking queue, while [`crate::sim::SimTransport`] interleaves
//! many cores under a virtual clock, one `step` at a time, in whatever
//! adversarial order its seeded scheduler picks.

use std::collections::VecDeque;
use std::time::Duration;

use gst_common::{Error, FxHashMap, FxHashSet, Result, Tuple};
use gst_eval::plan::RelationId;
use gst_eval::FixpointEngine;

use crate::message::{Envelope, Message, Payload};
use crate::obs::{ObsEvent, ObsKind, TraceSink};
use crate::profile::{Profiler, PHASE_COMPUTE, PHASE_DECODE, PHASE_ENCODE, PHASE_REPLAY};
use crate::spec::WorkerSpec;
use crate::stats::WorkerReport;
use crate::termination::{Safra, TokenAction, TokenMsg};

/// Runtime knobs shared by all workers.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// How long a passive worker blocks on its queue per wait.
    pub idle_poll: Duration,
    /// Give up if passive this long with no token traffic (a peer died).
    pub idle_watchdog: Duration,
    /// Perform the final-pooling step. Disable to measure the recursive
    /// computation alone — the paper treats pooling as a separate cost
    /// ("might require communication from all processors to a single
    /// processor", §3 step 5).
    pub pool_results: bool,
    /// Intra-worker morsel parallelism: threads each worker's engine may
    /// fan a large semi-naive delta across. 1 (the default) keeps the
    /// engine strictly sequential.
    pub morsel_threads: usize,
    /// Phase-attributed profiling: account every step's time to
    /// compute/encode/decode/replay/idle and record latency histograms.
    /// Off (the default) costs one `Option` branch per phase site.
    pub profile: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            idle_poll: Duration::from_millis(1),
            idle_watchdog: Duration::from_secs(30),
            pool_results: true,
            morsel_threads: 1,
            profile: false,
        }
    }
}

/// Where a worker's outbound envelopes go. The only seam between a worker
/// and its transport: threads send over channels, the simulator schedules
/// deliveries on its virtual clock.
pub(crate) trait Outbox {
    /// Hand `env` to the transport for delivery to processor `to`.
    fn send(&mut self, to: usize, env: Envelope) -> Result<()>;
}

/// What one scheduling quantum accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Progress was made (engine round, token handling, or absorption);
    /// schedule another step.
    Worked,
    /// Locally quiescent with nothing pending: the worker needs no more
    /// steps until a message arrives.
    Idle,
    /// Globally terminated.
    Done,
}

/// Sender-side retention of one link's batch history, enabling crash
/// recovery by replay while keeping memory bounded.
///
/// The tail holds individual batches not yet acknowledged by the
/// receiver. When the receiver's piggybacked cumulative ack advances, the
/// acked prefix is *compacted*: its tuples are folded (set-union, per
/// inbox) into the snapshot and the batches are dropped. Memory is then
/// bounded by the receiver's unacked window plus the number of *distinct*
/// tuples ever shipped on the link — not by total traffic. Replay for a
/// receiver whose watermark predates the tail ships the snapshot (as one
/// logical message standing in for sequence numbers `< base`) followed by
/// the tail.
#[derive(Default)]
struct ReplayLog {
    /// Every batch with sequence number `< base` has been compacted into
    /// `snapshot`.
    base: u64,
    /// Set-union of the compacted prefix, per inbox predicate.
    snapshot: FxHashMap<RelationId, FxHashSet<Tuple>>,
    /// Cached wire encoding of `snapshot`, invalidated exactly when a
    /// compaction folds a batch in. Acks piggyback on every envelope;
    /// without the cache, every replay re-sorted and re-encoded an
    /// unchanged snapshot.
    encoded: Option<Vec<(RelationId, Payload)>>,
    /// Retained batches, contiguous sequence numbers starting at `base`,
    /// each tagged with the recovery epoch it was shipped in and the inbox
    /// it addresses (the payload itself is destination-independent).
    /// Replay retransmits only batches from *earlier* epochs: a batch
    /// shipped in the current epoch was counted post-recovery and is
    /// guaranteed deliverable, so retransmitting it would double-count the
    /// send while the receiver dedups the copy — a permanent +1 in Safra's
    /// sum.
    /// Each entry also keeps the batch's retract flag so a replayed
    /// envelope is bit-identical to the original send.
    tail: VecDeque<(u64, u64, RelationId, Payload, bool)>,
}

impl ReplayLog {
    /// Fold every batch with sequence number `< acked` into the snapshot.
    fn truncate_to(&mut self, acked: u64) -> Result<()> {
        if acked <= self.base {
            // Nothing newly acknowledged — the common case for the ack
            // piggybacked on every envelope. No decode, no invalidation.
            return Ok(());
        }
        while self.tail.front().is_some_and(|(seq, ..)| *seq < acked) {
            let (_, _, inbox, payload, _) = self.tail.pop_front().expect("front checked");
            let tuples = crate::codec::decode_batch(&payload)?;
            self.snapshot.entry(inbox).or_default().extend(tuples);
            // The snapshot changed, so its cached encoding is stale. The
            // fold itself is the invalidation point — no separate check.
            self.encoded = None;
        }
        self.base = acked;
        Ok(())
    }

    /// Encode the snapshot, one payload per inbox, in deterministic order.
    /// Cached between compactions: repeated replays clone the retained
    /// `Arc` payloads instead of re-sorting and re-encoding.
    fn snapshot_payloads(&mut self) -> Result<Vec<(RelationId, Payload)>> {
        if let Some(cached) = &self.encoded {
            return Ok(cached.clone());
        }
        let mut inboxes: Vec<&RelationId> = self.snapshot.keys().collect();
        inboxes.sort();
        let payloads = inboxes
            .into_iter()
            .map(|inbox| {
                let mut tuples: Vec<Tuple> = self.snapshot[inbox].iter().cloned().collect();
                tuples.sort();
                Ok((*inbox, crate::codec::encode_batch(inbox.1, &tuples)?))
            })
            .collect::<Result<Vec<(RelationId, Payload)>>>()?;
        self.encoded = Some(payloads.clone());
        Ok(payloads)
    }

    /// Retained batch count (diagnostics and the drain test).
    #[cfg(test)]
    fn tail_len(&self) -> usize {
        self.tail.len()
    }

    fn clear(&mut self) {
        self.snapshot.clear();
        self.encoded = None;
        self.tail.clear();
    }
}

/// The per-processor state machine: fixpoint engine, Safra state, pending
/// message queue, and traffic counters. Contains no I/O.
pub(crate) struct WorkerCore {
    id: usize,
    n: usize,
    engine: FixpointEngine,
    spec: WorkerSpec,
    safra: Safra,
    held_token: Option<TokenMsg>,
    terminated: bool,
    bootstrapped: bool,
    pending: VecDeque<Envelope>,
    /// Recovery epoch this incarnation runs in. Envelopes from earlier
    /// epochs are dropped uncounted; replay re-delivers their content.
    epoch: u64,
    /// True once this incarnation has processed the `Recover` broadcast
    /// of its own epoch (guards against processing it twice).
    recover_handled: bool,
    /// Next *batch* sequence number per destination link — a dense space,
    /// so the receiver can maintain a contiguous watermark.
    batch_seq: Vec<u64>,
    /// Next control-message sequence number per destination link (traces
    /// and diagnostics only).
    ctrl_seq: Vec<u64>,
    /// Per-source contiguous receive watermark: every batch sequence
    /// number `< recv_floor[p]` from `p` has been absorbed. Piggybacked on
    /// outgoing envelopes as the cumulative ack.
    recv_floor: Vec<u64>,
    /// Batch sequence numbers `≥ recv_floor[p]` already absorbed, per
    /// source — transport duplicates are recognized here so Safra's
    /// counter stays exact; entries below the floor are pruned as it
    /// advances, bounding memory by the reorder window.
    seen_above: Vec<FxHashSet<u64>>,
    /// Sender-side replay log per destination link.
    replay: Vec<ReplayLog>,
    /// Outgoing channels grouped by channel relation. Deltas accumulate
    /// across rounds and go out as one batch per channel at the local
    /// fixpoint — the arena's insertion order makes the backlog a
    /// borrowable suffix, and coarse batches keep the envelope count (and
    /// the scheduler churn it causes) proportional to fixpoints, not
    /// rounds. A channel feeding several destinations (the broadcast
    /// scheme) is encoded once and the payload `Arc` shared.
    ship_groups: Vec<ShipGroup>,
    /// Batches accepted since the last drain, grouped per inbox (same
    /// order as `spec.program.inboxes`): the decode-and-inject pass runs
    /// once per inbox per step however many batches arrived, so a worker
    /// that fell behind pays one index sync instead of one per batch.
    stash: Vec<Vec<Payload>>,
    /// Total payloads currently stashed (fast emptiness check).
    stash_count: usize,
    // statistics
    sent_tuples_to: Vec<u64>,
    sent_bytes_to: Vec<u64>,
    sent_messages: u64,
    received_tuples: u64,
    received_bytes: u64,
    /// Distinct `encode_batch` calls on the ship path.
    encode_calls: u64,
    /// Bytes those encodes produced (each multicast payload counted once,
    /// unlike `sent_bytes_to` which counts per link).
    encoded_bytes: u64,
    /// What the row-oriented wire format would have spent on the same
    /// batches — the reference of the journal's compression ratio.
    encoded_raw_bytes: u64,
    duplicate_batches: u64,
    replayed_batches: u64,
    stale_dropped: u64,
    /// Tuples shipped on delete-marked channels (DRed over-deletion).
    retract_tuples_sent: u64,
    /// Tuples received in delete-marked batches (first deliveries only).
    retract_tuples_received: u64,
    busy: Duration,
    /// Channel tuples shipped per engine round, `(round, tuples)` —
    /// sparse: rounds that shipped nothing have no entry.
    sent_per_round: Vec<(u64, u64)>,
    /// Event journal buffer; disabled (free) unless tracing is on.
    sink: TraceSink,
    /// Phase-attributed profiler; `None` (free) unless profiling is on.
    prof: Option<Box<Profiler>>,
    /// True while the previous step reported `Idle` — the idle-wait event
    /// fires on the transition, not on every 1 ms poll.
    was_idle: bool,
}

/// One send group: a channel relation with every destination it feeds and
/// the arena watermark of rows already shipped (or looped back).
struct ShipGroup {
    channel: RelationId,
    /// Rows of the channel relation below this index are already out.
    from_row: usize,
    /// `(dest, inbox)` pairs in spec order.
    dests: Vec<(usize, RelationId)>,
}

impl WorkerCore {
    pub(crate) fn new(spec: WorkerSpec, n: usize) -> Result<Self> {
        WorkerCore::with_epoch(spec, n, 0)
    }

    /// A core (re)started in recovery epoch `epoch` — used by supervisors
    /// to rebuild a crashed processor from its retained spec.
    pub(crate) fn with_epoch(spec: WorkerSpec, n: usize, epoch: u64) -> Result<Self> {
        let id = spec.program.processor;
        let mut ship_groups: Vec<ShipGroup> = Vec::new();
        for ch in &spec.program.outgoing {
            match ship_groups.iter_mut().find(|g| g.channel == ch.channel) {
                Some(g) => g.dests.push((ch.dest, ch.inbox)),
                None => ship_groups.push(ShipGroup {
                    channel: ch.channel,
                    from_row: 0,
                    dests: vec![(ch.dest, ch.inbox)],
                }),
            }
        }
        let stash = vec![Vec::new(); spec.program.inboxes.len()];
        // One construction path for cold starts and crash restarts: the
        // spec (including any update-session seed) fully determines the
        // engine's starting state, which is what makes epoch recovery
        // mid-update-round exact.
        let engine = spec.build_engine()?;
        Ok(WorkerCore {
            id,
            n,
            engine,
            spec,
            safra: Safra::with_epoch(id, n, epoch),
            held_token: None,
            terminated: false,
            bootstrapped: false,
            pending: VecDeque::new(),
            epoch,
            recover_handled: false,
            batch_seq: vec![0; n],
            ctrl_seq: vec![0; n],
            recv_floor: vec![0; n],
            seen_above: vec![FxHashSet::default(); n],
            replay: (0..n).map(|_| ReplayLog::default()).collect(),
            ship_groups,
            stash,
            stash_count: 0,
            sent_tuples_to: vec![0; n],
            sent_bytes_to: vec![0; n],
            sent_messages: 0,
            received_tuples: 0,
            received_bytes: 0,
            encode_calls: 0,
            encoded_bytes: 0,
            encoded_raw_bytes: 0,
            duplicate_batches: 0,
            replayed_batches: 0,
            stale_dropped: 0,
            retract_tuples_sent: 0,
            retract_tuples_received: 0,
            busy: Duration::ZERO,
            sent_per_round: Vec::new(),
            sink: TraceSink::disabled(),
            prof: None,
            was_idle: false,
        })
    }

    /// Install an event sink (tracing on). The transport decides the
    /// clock: wall-origin for threads, virtual for the simulator.
    pub(crate) fn set_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Apply the transport's [`WorkerConfig::morsel_threads`] knob to this
    /// core's engine. Chunk-order merging keeps firings and models
    /// bit-identical to the sequential path, so this is purely a
    /// wall-clock knob.
    pub(crate) fn set_morsel_threads(&mut self, threads: usize) {
        self.engine
            .set_morsels(gst_eval::MorselConfig::with_threads(threads));
    }

    /// Install a phase profiler (profiling on). The transport decides the
    /// clock, exactly as for [`set_sink`]: wall time for threads and TCP,
    /// virtual ticks for the simulator. Also switches the engine into the
    /// matching per-rule time accounting mode.
    ///
    /// [`set_sink`]: WorkerCore::set_sink
    pub(crate) fn set_profiler(&mut self, prof: Profiler, mode: gst_eval::TimeMode) {
        self.engine.set_time_mode(mode);
        self.prof = Some(Box::new(prof));
    }

    /// Push the simulator's virtual clock into the sink and profiler
    /// (no-op for disabled or wall-clock sinks).
    pub(crate) fn set_trace_now(&mut self, now: u64) {
        self.sink.set_virtual_now(now);
        if let Some(p) = self.prof.as_mut() {
            p.set_now(now);
        }
    }

    /// Drain this incarnation's journal buffer.
    pub(crate) fn take_trace_events(&mut self) -> Vec<ObsEvent> {
        self.sink.take_events()
    }

    pub(crate) fn id(&self) -> usize {
        self.id
    }

    pub(crate) fn terminated(&self) -> bool {
        self.terminated
    }

    /// Queue a delivered envelope; it is absorbed on the next [`step`].
    ///
    /// [`step`]: WorkerCore::step
    pub(crate) fn enqueue(&mut self, env: Envelope) {
        self.pending.push_back(env);
    }

    /// One scheduling quantum: absorb everything pending, then do at most
    /// one unit of work (an engine round, or token handling when passive).
    pub(crate) fn step(&mut self, out: &mut dyn Outbox) -> Result<Step> {
        if self.prof.is_some() && self.was_idle {
            // The gap since the previous step's end was spent waiting for
            // messages or the termination probe: idle time.
            let round = self.engine.stats().rounds;
            if let Some(p) = self.prof.as_mut() {
                p.idle_gap(round);
            }
        }
        let t0 = std::time::Instant::now();
        let result = self.step_inner(out);
        self.busy += t0.elapsed();
        if let Some(p) = self.prof.as_mut() {
            p.step_end();
        }
        if self.sink.enabled() {
            // Journal the *transition* into idleness: the threaded
            // transport re-polls an idle worker every `idle_poll`, and one
            // event per wait beats one per poll.
            if matches!(result, Ok(Step::Idle)) {
                if !self.was_idle {
                    self.was_idle = true;
                    self.sink.emit(ObsKind::IdleWait);
                }
            } else {
                self.was_idle = false;
            }
        } else {
            self.was_idle = matches!(result, Ok(Step::Idle));
        }
        result
    }

    fn step_inner(&mut self, out: &mut dyn Outbox) -> Result<Step> {
        if self.terminated {
            return Ok(Step::Done);
        }
        if !self.bootstrapped {
            self.bootstrapped = true;
            let t0 = self.prof.as_ref().map(|p| (p.start(), self.engine.stats().firings));
            self.engine.bootstrap()?;
            if let Some((t0, firings_before)) = t0 {
                let firings = self.engine.stats().firings - firings_before;
                if let Some(p) = self.prof.as_mut() {
                    let d = p.stop(t0, firings);
                    p.add(PHASE_COMPUTE, 0, d);
                }
            }
        }

        // Receiving step: absorb what the transport delivered.
        let absorbed = !self.pending.is_empty();
        while let Some(env) = self.pending.pop_front() {
            self.absorb(env, out)?;
            if self.terminated {
                return Ok(Step::Done);
            }
        }

        // Coalesced receive: one decode-and-inject pass per inbox over
        // everything stashed since the last engine step.
        let t0 = (self.prof.is_some() && self.stash_count > 0)
            .then(|| self.prof.as_ref().expect("checked").start());
        let decoded = self.drain_stash()?;
        if let Some(t0) = t0 {
            let round = self.engine.stats().rounds;
            if let Some(p) = self.prof.as_mut() {
                let d = p.stop(t0, decoded);
                p.add(PHASE_DECODE, round, d);
                p.profile.decode_time.record(d);
            }
        }

        // Processing step: one engine round.
        let fresh = self.engine.advance();
        if fresh > 0 {
            // `advance` already closed the round in the stats, so the
            // round that is now processing is `rounds - 1`.
            let round = self.engine.stats().rounds - 1;
            let observing = self.sink.enabled() || self.prof.is_some();
            let firings_before = if observing { self.engine.stats().firings } else { 0 };
            let t0 = self.prof.as_ref().map(|p| p.start());
            if self.sink.enabled() {
                self.sink.emit(ObsKind::RoundBegin { round });
            }
            self.engine.process_round();
            if observing {
                let firings = self.engine.stats().firings - firings_before;
                if self.sink.enabled() {
                    self.sink.emit(ObsKind::RoundEnd { round, fresh, firings });
                }
                if let Some(t0) = t0 {
                    if let Some(p) = self.prof.as_mut() {
                        let d = p.stop(t0, firings);
                        p.add(PHASE_COMPUTE, round, d);
                        p.profile.round_latency.record(d);
                    }
                }
            }
            return Ok(Step::Worked);
        }

        // Sending step, deferred to the local fixpoint: ship each
        // channel's accumulated backlog as a single batch. A loopback
        // re-activates the engine, so report `Worked` and let the next
        // step pick the fixpoint back up.
        if self.ship_channel_deltas(out)? {
            return Ok(Step::Worked);
        }
        debug_assert!(self.engine.quiescent());

        // Passive: a held token may now be handled (Safra forwards only
        // while passive), and the initiator may launch a probe.
        if let Some(token) = self.held_token.take() {
            self.handle_token(token, out)?;
            return Ok(if self.terminated { Step::Done } else { Step::Worked });
        }
        if self.id == 0 {
            if let Some(token) = self.safra.launch() {
                self.send_token(self.safra.next(), token, out)?;
                return Ok(Step::Worked);
            }
        }
        Ok(if absorbed { Step::Worked } else { Step::Idle })
    }

    /// Absorb one envelope: inject batches, hold tokens until passive,
    /// honor terminate, run the recovery handshakes.
    ///
    /// Epoch discipline: a `Recover` may *raise* our epoch; any other
    /// envelope from an earlier epoch is dropped uncounted — the sender's
    /// replay (triggered by our post-recovery `AckSync`) re-delivers its
    /// content inside the new epoch, keeping Safra's per-epoch accounting
    /// exact.
    fn absorb(&mut self, env: Envelope, out: &mut dyn Outbox) -> Result<()> {
        if let Message::Recover { epoch, restarted } = env.message {
            return self.on_recover(epoch, restarted, out);
        }
        if env.epoch < self.epoch {
            self.stale_dropped += 1;
            return Ok(());
        }
        debug_assert!(
            env.epoch == self.epoch,
            "recovery broadcasts its epoch before any traffic of that epoch"
        );
        // Piggybacked cumulative ack: compact the replay log for the link
        // *to* this sender.
        self.replay[env.from].truncate_to(env.ack)?;
        match env.message {
            Message::Batch { inbox, payload, retract } => {
                self.accept_batch(env.from, env.seq, inbox, payload, retract)
            }
            Message::Token(token) => {
                // One token circulates the ring; a second can only appear
                // if a transport duplicated it (faults must not).
                debug_assert!(self.held_token.is_none(), "two tokens in the ring");
                self.held_token = Some(token);
                Ok(())
            }
            Message::Terminate => {
                self.terminated = true;
                // Global termination: replay logs are no longer needed.
                self.replay.iter_mut().for_each(ReplayLog::clear);
                self.sink.emit(ObsKind::Terminated);
                Ok(())
            }
            Message::AckSync { acked } => self.replay_link(env.from, acked, out),
            Message::Snapshot { payloads, upto } => {
                self.accept_snapshot(env.from, payloads, upto)
            }
            Message::Abort { reason } => Err(Error::Runtime(format!(
                "aborted: processor {} failed: {reason}",
                env.from
            ))),
            Message::Recover { .. } => unreachable!("handled above"),
        }
    }

    /// Ring repair (see DESIGN.md §7). Entering epoch `epoch`:
    /// pre-epoch accounting is void (counter zeroed, color blackened,
    /// probe abandoned, held token discarded), receive-state for the
    /// restarted link is forgotten (its new incarnation restarts at
    /// sequence 0), above-floor dedup state is cleared for every link
    /// (those batches will be replayed and must be re-counted), and an
    /// `AckSync` with our watermark goes to every peer to trigger replay.
    fn on_recover(&mut self, epoch: u64, restarted: usize, out: &mut dyn Outbox) -> Result<()> {
        if epoch < self.epoch || (epoch == self.epoch && self.recover_handled) {
            self.stale_dropped += 1;
            return Ok(());
        }
        self.epoch = epoch;
        self.recover_handled = true;
        self.sink.emit(ObsKind::EpochRepair { epoch });
        self.safra.on_recover(epoch);
        if self.held_token.take().is_some() {
            self.stale_dropped += 1;
        }
        if restarted != self.id {
            // The restarted peer's new incarnation numbers its batches
            // from 0 again; stale receive-state would misclassify them as
            // duplicates.
            self.recv_floor[restarted] = 0;
            // Our own outgoing sequence space toward it continues — the
            // fresh incarnation's floor starts at 0 and our replay covers
            // the full history.
        }
        for seen in self.seen_above.iter_mut() {
            seen.clear();
        }
        for peer in 0..self.n {
            if peer != self.id {
                let ack = self.recv_floor[peer];
                self.send_ctrl(peer, Message::AckSync { acked: ack }, out)?;
            }
        }
        Ok(())
    }

    /// Recovery replay: peer `to` declared contiguous watermark `acked`
    /// for our link. Everything at or above it that was shipped *before*
    /// the current epoch is retransmitted — the compacted snapshot first
    /// if the watermark predates the tail, then the retained pre-epoch
    /// batches. Each replayed message is counted as a fresh basic message
    /// of the current epoch (the receiver's dedup state for this range was
    /// cleared by `Recover`, so it counts each exactly once too). Batches
    /// already shipped in the current epoch are skipped: their original
    /// send was counted post-recovery and the transport delivers it.
    fn replay_link(&mut self, to: usize, acked: u64, out: &mut dyn Outbox) -> Result<()> {
        let t0 = self.prof.as_ref().map(|p| p.start());
        self.replay[to].truncate_to(acked)?;
        let replayed_before = self.replayed_batches;
        let base = self.replay[to].base;
        if acked < base {
            let payloads = self.replay[to].snapshot_payloads()?;
            self.safra.on_send();
            self.replayed_batches += 1;
            let env = Envelope {
                from: self.id,
                seq: self.next_ctrl_seq(to),
                epoch: self.epoch,
                ack: self.recv_floor[to],
                message: Message::Snapshot { payloads, upto: base },
            };
            out.send(to, env)?;
        }
        let resend: Vec<(u64, RelationId, Payload, bool)> = self
            .replay[to]
            .tail
            .iter()
            .filter(|(_, shipped_in, ..)| *shipped_in < self.epoch)
            .map(|(seq, _, inbox, payload, retract)| {
                (*seq, *inbox, payload.clone(), *retract)
            })
            .collect();
        for (seq, inbox, payload, retract) in resend {
            self.safra.on_send();
            self.replayed_batches += 1;
            let env = Envelope {
                from: self.id,
                seq,
                epoch: self.epoch,
                ack: self.recv_floor[to],
                message: Message::Batch { inbox, payload, retract },
            };
            out.send(to, env)?;
        }
        let messages = self.replayed_batches - replayed_before;
        if messages > 0 {
            self.sink.emit(ObsKind::ReplaySent { to, messages });
            if let Some(t0) = t0 {
                let round = self.engine.stats().rounds;
                if let Some(p) = self.prof.as_mut() {
                    let d = p.stop(t0, messages);
                    p.add(PHASE_REPLAY, round, d);
                }
            }
        }
        Ok(())
    }

    /// Absorb a compacted replay-log prefix: stash every payload for the
    /// coalesced inject pass and advance the watermark to `upto` (the
    /// sequence range the snapshot stands in for). One logical message for
    /// Safra's accounting.
    fn accept_snapshot(
        &mut self,
        from: usize,
        payloads: Vec<(RelationId, Payload)>,
        upto: u64,
    ) -> Result<()> {
        self.safra.on_basic_receive();
        self.sink.emit(ObsKind::SnapshotReceived {
            from,
            payloads: payloads.len() as u64,
            upto,
        });
        for (inbox, payload) in payloads {
            let (_, count) = crate::codec::peek_batch(&payload)?;
            self.received_bytes += payload.len() as u64;
            self.received_tuples += count as u64;
            self.stash_payload(inbox, payload)?;
        }
        if upto > self.recv_floor[from] {
            self.recv_floor[from] = upto;
            self.seen_above[from].retain(|&seq| seq >= upto);
        }
        self.advance_floor(from);
        Ok(())
    }

    /// Accept an incoming batch (the receive step: the decoded tuples
    /// realize `t_in^i(W̄) :- t_ji(W̄)`). Only the header is read here —
    /// the payload is stashed and decoded in one coalesced inject pass per
    /// inbox on the next engine step, so a worker that fell behind pays
    /// one index sync however many batches queued up.
    ///
    /// A transport-level duplicate (same link sequence number) is *not*
    /// counted by the termination detector — Safra instruments logical
    /// messages, and a retransmission is the same logical message — but
    /// its payload is still stashed: under set semantics re-deriving a
    /// tuple is a no-op, which is exactly the idempotence the simulation
    /// tests exercise.
    fn accept_batch(
        &mut self,
        from: usize,
        seq: u64,
        inbox: RelationId,
        payload: Payload,
        retract: bool,
    ) -> Result<()> {
        let first_delivery =
            seq >= self.recv_floor[from] && self.seen_above[from].insert(seq);
        let (_, count) = crate::codec::peek_batch(&payload)?;
        self.sink.emit(ObsKind::BatchReceived {
            from,
            tuples: count as u64,
            bytes: payload.len() as u64,
            seq,
            duplicate: !first_delivery,
        });
        if first_delivery {
            self.safra.on_basic_receive();
            self.received_bytes += payload.len() as u64;
            self.received_tuples += count as u64;
            if retract {
                self.retract_tuples_received += count as u64;
            }
            self.advance_floor(from);
        } else {
            self.duplicate_batches += 1;
        }
        self.stash_payload(inbox, payload)
    }

    /// Queue a payload for the next coalesced inject pass. An inbox
    /// predicate the spec does not declare falls through to a direct
    /// inject so the engine raises its typed error (misrouted envelope)
    /// at the receiving step, not one round later.
    fn stash_payload(&mut self, inbox: RelationId, payload: Payload) -> Result<()> {
        match self.spec.program.inboxes.iter().position(|p| *p == inbox) {
            Some(idx) => {
                self.stash[idx].push(payload);
                self.stash_count += 1;
                Ok(())
            }
            None => self
                .engine
                .inject_with(inbox, |out| crate::codec::decode_batch_into(&payload, out))
                .map(|_| ()),
        }
    }

    /// Coalesced receiving step: decode every stashed payload of an inbox
    /// inside a single `inject_with` — one index sync per inbox, however
    /// many batches arrived since the last drain. Returns the number of
    /// tuples decoded (the profiler's deterministic decode proxy).
    fn drain_stash(&mut self) -> Result<u64> {
        if self.stash_count == 0 {
            return Ok(0);
        }
        self.stash_count = 0;
        let mut decoded = 0u64;
        for idx in 0..self.stash.len() {
            if self.stash[idx].is_empty() {
                continue;
            }
            let batches = std::mem::take(&mut self.stash[idx]);
            let inbox = self.spec.program.inboxes[idx];
            decoded += self.engine.inject_with(inbox, |out| {
                let mut total = 0;
                for payload in &batches {
                    total += crate::codec::decode_batch_into(payload, out)?;
                }
                Ok(total)
            })? as u64;
        }
        Ok(decoded)
    }

    /// Slide the contiguous watermark for `from` over any absorbed
    /// sequence numbers, pruning them from the above-floor set.
    fn advance_floor(&mut self, from: usize) {
        while self.seen_above[from].remove(&self.recv_floor[from]) {
            self.recv_floor[from] += 1;
        }
    }

    /// Ship every channel predicate's fresh delta (paper: sending step).
    ///
    /// The delta is a borrowed arena suffix encoded straight onto the
    /// wire — no intermediate tuple vector; the only retained copy is the
    /// payload the replay log needs anyway. A channel feeding several
    /// remote destinations (the broadcast scheme's shared head predicate)
    /// is encoded exactly once and every destination's envelope clones
    /// the payload `Arc` — single-encode multicast.
    fn ship_channel_deltas(&mut self, out: &mut dyn Outbox) -> Result<bool> {
        let mut shipped = false;
        for k in 0..self.ship_groups.len() {
            let (channel, from_row) =
                (self.ship_groups[k].channel, self.ship_groups[k].from_row);
            let count = self.engine.rows_from(channel, from_row).len();
            if count == 0 {
                continue;
            }
            self.ship_groups[k].from_row = from_row + count;
            shipped = true;
            let payload = if self.ship_groups[k].dests.iter().any(|(d, _)| *d != self.id) {
                let t0 = self.prof.as_ref().map(|p| p.start());
                let payload = {
                    let tuples = self.engine.rows_from(channel, from_row);
                    crate::codec::encode_batch(channel.1, tuples)?
                };
                let raw_bytes = crate::codec::row_format_bytes(channel.1, count);
                self.encode_calls += 1;
                self.encoded_bytes += payload.len() as u64;
                self.encoded_raw_bytes += raw_bytes;
                self.sink.emit(ObsKind::BatchEncoded {
                    channel: channel.0 .0,
                    tuples: count as u64,
                    bytes: payload.len() as u64,
                    raw_bytes,
                });
                if let Some(t0) = t0 {
                    let round = self.engine.stats().rounds;
                    let bytes = payload.len() as u64;
                    if let Some(p) = self.prof.as_mut() {
                        let d = p.stop(t0, bytes);
                        p.add(PHASE_ENCODE, round, d);
                        p.profile.encode_time.record(d);
                        p.profile.batch_bytes.record(bytes);
                    }
                }
                Some(payload)
            } else {
                None
            };
            // Delete-marked channel: the batch carries DRed retractions.
            // Routing, replay, and Safra accounting are identical — only
            // the envelope flag and traffic attribution differ.
            let retract = self.spec.program.retract_channels.contains(&channel);
            let dests = self.ship_groups[k].dests.clone();
            for (dest, inbox) in dests {
                if dest == self.id {
                    // Local loopback (t_ii): no network, no counters.
                    self.engine.loopback_from(channel, inbox, from_row)?;
                    continue;
                }
                let payload = payload.clone().expect("remote dest implies an encode");
                if retract {
                    self.retract_tuples_sent += count as u64;
                }
                self.sent_tuples_to[dest] += count as u64;
                self.sent_bytes_to[dest] += payload.len() as u64;
                self.sent_messages += 1;
                self.record_round_send(count as u64);
                self.safra.on_send();
                let seq = self.next_batch_seq(dest);
                self.sink.emit(ObsKind::BatchSent {
                    to: dest,
                    tuples: count as u64,
                    bytes: payload.len() as u64,
                    seq,
                });
                // Retain for crash-recovery replay until the receiver acks
                // it (compaction) or the run terminates.
                self.replay[dest]
                    .tail
                    .push_back((seq, self.epoch, inbox, payload.clone(), retract));
                out.send(
                    dest,
                    Envelope {
                        from: self.id,
                        seq,
                        epoch: self.epoch,
                        ack: self.recv_floor[dest],
                        message: Message::Batch { inbox, payload, retract },
                    },
                )?;
            }
        }
        Ok(shipped)
    }

    /// Attribute `tuples` shipped tuples to the engine round that derived
    /// them (sparse per-round series; merged into the open entry when the
    /// round ships on several channels).
    fn record_round_send(&mut self, tuples: u64) {
        let round = self.engine.stats().rounds;
        match self.sent_per_round.last_mut() {
            Some((r, total)) if *r == round => *total += tuples,
            _ => self.sent_per_round.push((round, tuples)),
        }
    }

    fn handle_token(&mut self, token: TokenMsg, out: &mut dyn Outbox) -> Result<()> {
        match self.safra.on_token(token) {
            TokenAction::Forward(t) | TokenAction::Relaunch(t) => {
                self.send_token(self.safra.next(), t, out)
            }
            TokenAction::Drop => {
                // A pre-recovery token survived in our queue; the current
                // epoch's probe supersedes it.
                self.stale_dropped += 1;
                self.sink.emit(ObsKind::TokenDropped);
                Ok(())
            }
            TokenAction::Terminate => {
                self.terminated = true;
                self.replay.iter_mut().for_each(ReplayLog::clear);
                self.sink.emit(ObsKind::Terminated);
                for dest in 0..self.n {
                    if dest != self.id {
                        self.send_ctrl(dest, Message::Terminate, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn send_token(&mut self, dest: usize, token: TokenMsg, out: &mut dyn Outbox) -> Result<()> {
        self.sink.emit(ObsKind::TokenSent {
            to: dest,
            count: token.count,
            black: token.is_black(),
        });
        self.send_ctrl(dest, Message::Token(token), out)
    }

    /// Send a control message (token, terminate, recovery handshake) with
    /// the piggybacked cumulative ack for the destination's link.
    fn send_ctrl(&mut self, dest: usize, message: Message, out: &mut dyn Outbox) -> Result<()> {
        let seq = self.next_ctrl_seq(dest);
        out.send(
            dest,
            Envelope {
                from: self.id,
                seq,
                epoch: self.epoch,
                ack: self.recv_floor[dest],
                message,
            },
        )
    }

    fn next_batch_seq(&mut self, dest: usize) -> u64 {
        let seq = self.batch_seq[dest];
        self.batch_seq[dest] += 1;
        seq
    }

    fn next_ctrl_seq(&mut self, dest: usize) -> u64 {
        let seq = self.ctrl_seq[dest];
        self.ctrl_seq[dest] += 1;
        seq
    }

    /// Retained (unacked) replay-log batches toward `dest` — exercised by
    /// the log-drain test.
    #[cfg(test)]
    pub(crate) fn replay_tail_len(&self, dest: usize) -> usize {
        self.replay[dest].tail_len()
    }

    pub(crate) fn into_report(self, pooled_tuples: u64) -> WorkerReport {
        let stats = self.engine.stats().clone();
        let processing_firings = stats.firings_for_rules(&self.spec.program.processing_rules);
        let profile = self.prof.map(|p| p.profile);
        WorkerReport {
            processor: self.id,
            eval: stats,
            processing_firings,
            sent_tuples_to: self.sent_tuples_to,
            sent_bytes_to: self.sent_bytes_to,
            sent_messages: self.sent_messages,
            received_tuples: self.received_tuples,
            received_bytes: self.received_bytes,
            encode_calls: self.encode_calls,
            encoded_bytes: self.encoded_bytes,
            encoded_raw_bytes: self.encoded_raw_bytes,
            duplicate_batches: self.duplicate_batches,
            replayed_batches: self.replayed_batches,
            stale_dropped: self.stale_dropped,
            retract_tuples_sent: self.retract_tuples_sent,
            retract_tuples_received: self.retract_tuples_received,
            pooled_tuples: 0,
            busy: self.busy,
            sent_per_round: self.sent_per_round,
            profile,
        }
        .with_pooled(pooled_tuples)
    }

    /// Move the pooled relations out of the engine (final pooling, §3
    /// step 5) — a move, not a clone, so pooling cost is one union at the
    /// coordinator.
    pub(crate) fn take_pooled(&mut self) -> PooledRelations {
        let pairs = self.spec.program.pooling.clone();
        pairs
            .into_iter()
            .filter_map(|(local, global)| {
                self.engine.take_relation(local).map(|rel| (global, rel))
            })
            .collect()
    }

    pub(crate) fn pool_results(&self, config: &WorkerConfig) -> bool {
        config.pool_results
    }
}

/// `(global predicate, relation)` pairs a worker pools into the answer.
pub(crate) type PooledRelations = Vec<((gst_common::SymbolId, usize), gst_storage::Relation)>;

/// Finish a terminated core: pool (if configured), drain the journal
/// buffer, and build the report.
pub(crate) fn finish_core(
    mut core: WorkerCore,
    config: &WorkerConfig,
) -> (WorkerReport, PooledRelations, Vec<ObsEvent>) {
    let pooled = if core.pool_results(config) {
        core.take_pooled()
    } else {
        Vec::new()
    };
    let pooled_tuples = pooled.iter().map(|(_, r)| r.len() as u64).sum();
    let events = core.take_trace_events();
    (core.into_report(pooled_tuples), pooled, events)
}

/// The watchdog error every transport reports when a worker starves while
/// others should still be running — a crashed or wedged peer.
pub(crate) fn watchdog_error(id: usize, idle_for: impl std::fmt::Debug) -> Error {
    Error::Runtime(format!(
        "processor {id} idle for {idle_for:?} without termination — a peer likely failed"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProcessorProgram;
    use crate::termination::Color;
    use gst_common::{ituple, Interner};
    use gst_storage::Database;
    use std::sync::Arc;

    /// Outbox that records sends for inspection.
    #[derive(Default)]
    struct Recorder {
        sent: Vec<(usize, Envelope)>,
    }

    impl Outbox for Recorder {
        fn send(&mut self, to: usize, env: Envelope) -> Result<()> {
            self.sent.push((to, env));
            Ok(())
        }
    }

    /// The snapshot encoding is cached: repeated replays after an
    /// unchanged compaction point return the same `Arc` payloads, and a
    /// no-op ack neither decodes nor invalidates anything.
    #[test]
    fn replay_snapshot_encoding_is_cached_until_compaction() {
        let interner = Interner::new();
        let inbox = (interner.intern("t@in"), 2);
        let mut log = ReplayLog::default();
        let p1 = crate::codec::encode_batch(inbox.1, &[ituple![1, 2]]).unwrap();
        let p2 = crate::codec::encode_batch(inbox.1, &[ituple![3, 4]]).unwrap();
        log.tail.push_back((0, 0, inbox, p1, false));
        log.tail.push_back((1, 0, inbox, p2, false));

        log.truncate_to(1).unwrap(); // folds seq 0
        let a = log.snapshot_payloads().unwrap();
        let b = log.snapshot_payloads().unwrap();
        assert!(
            Arc::ptr_eq(&a[0].1, &b[0].1),
            "second replay reuses the cached encoding"
        );

        log.truncate_to(1).unwrap(); // duplicate ack: no fold, no invalidation
        let c = log.snapshot_payloads().unwrap();
        assert!(Arc::ptr_eq(&a[0].1, &c[0].1));

        log.truncate_to(2).unwrap(); // folds seq 1: cache invalidated
        let d = log.snapshot_payloads().unwrap();
        assert!(!Arc::ptr_eq(&a[0].1, &d[0].1));
        assert_eq!(d[0].0, inbox, "snapshot payloads carry their inbox");
        let tuples = crate::codec::decode_batch(&d[0].1).unwrap();
        assert_eq!(tuples.len(), 2, "snapshot holds both folded batches");
    }

    /// A two-worker core pair: worker 0 derives from `e` and has real work
    /// to do; worker 1 just stores what it receives.
    fn busy_core() -> (WorkerCore, Interner) {
        let interner = Interner::new();
        let unit = gst_frontend::parser::parse_program_with(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Y) :- e(X,Z), t(Z,Y).",
            &interner,
        )
        .unwrap();
        let e = (interner.intern("e"), 2);
        let mut db = Database::new(interner.clone());
        for k in 0..4i64 {
            db.insert(e, ituple![k, k + 1]).unwrap();
        }
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit.program,
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![0, 1],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        // Two processors so worker 1 is a non-initiator ring member.
        (WorkerCore::new(spec, 2).unwrap(), interner)
    }

    fn token() -> Envelope {
        Envelope {
            from: 0,
            seq: 0,
            epoch: 0,
            ack: 0,
            message: Message::Token(TokenMsg {
                color: Color::White,
                count: 0,
                epoch: 0,
            }),
        }
    }

    /// Safra's rule: an *active* process holds the token and forwards it
    /// only once passive. The core must keep stepping productive rounds
    /// with the token parked, and forward it exactly when the engine goes
    /// quiescent.
    #[test]
    fn token_is_held_while_active_and_forwarded_when_passive() {
        let (mut core, _interner) = busy_core();
        let mut out = Recorder::default();
        core.enqueue(token());
        // The chain of length 4 needs several rounds; the token must not
        // appear in the outbox while rounds still produce fresh tuples.
        let mut worked = 0;
        loop {
            match core.step(&mut out).unwrap() {
                Step::Worked => {
                    worked += 1;
                    assert!(worked < 100, "no quiescence");
                }
                Step::Idle => break,
                Step::Done => panic!("no terminate was sent"),
            }
        }
        assert!(worked > 2, "the chain workload takes multiple rounds");
        let forwarded: Vec<&(usize, Envelope)> = out
            .sent
            .iter()
            .filter(|(_, env)| matches!(env.message, Message::Token(_)))
            .collect();
        assert_eq!(forwarded.len(), 1, "token forwarded exactly once");
        let (dest, env) = forwarded[0];
        assert_eq!(*dest, 0, "ring of two: 1 forwards to 0");
        match env.message {
            // The worker never received a basic message, so it stayed
            // white and only accumulated its (zero) counter.
            Message::Token(t) => {
                assert_eq!(t, TokenMsg { color: Color::White, count: 0, epoch: 0 })
            }
            _ => unreachable!(),
        }
    }

    /// Two tokens can never legitimately coexist in Safra's ring; the
    /// debug assertion must catch a transport that duplicates one.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "two tokens in the ring")]
    fn duplicated_token_trips_the_ring_invariant() {
        let (mut core, _interner) = busy_core();
        let mut out = Recorder::default();
        core.enqueue(token());
        core.enqueue(token());
        // Both tokens are absorbed in one step while the engine is active:
        // the second must trip the debug assertion.
        let _ = core.step(&mut out);
    }

    /// A transport-duplicated batch (same link sequence number) is
    /// absorbed — set semantics make the re-injection a no-op — but not
    /// double-counted by the termination detector or the traffic stats.
    #[test]
    fn duplicate_batch_is_injected_but_not_double_counted() {
        let interner = Interner::new();
        let unit =
            gst_frontend::parser::parse_program_with("out(X) :- inbox(X).", &interner).unwrap();
        let inbox = (interner.intern("inbox"), 1);
        let out_pred = (interner.get("out").unwrap(), 1);
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit.program,
                outgoing: vec![],
                inboxes: vec![inbox],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(Database::new(interner.clone())),
            session: None,
        };
        let mut core = WorkerCore::new(spec, 2).unwrap();
        let mut out = Recorder::default();

        let payload = crate::codec::encode_batch(inbox.1, &[ituple![7]]).unwrap();
        let env = Envelope {
            from: 0,
            seq: 0,
            epoch: 0,
            ack: 0,
            message: Message::Batch { inbox, payload, retract: false },
        };
        core.enqueue(env.clone());
        core.enqueue(env);
        while core.step(&mut out).unwrap() == Step::Worked {}

        assert_eq!(core.received_tuples, 1, "duplicate not counted");
        assert_eq!(core.duplicate_batches, 1);
        assert_eq!(
            core.engine.relation(out_pred).map(|r| r.len()),
            Some(1),
            "set semantics: the duplicate derives nothing new"
        );
        // Safra saw exactly one logical receive: counter −1, black.
        assert_eq!(core.safra.counter(), -1);
    }

    /// Replay-log memory stays bounded: a shipped batch is retained in
    /// the sender's tail only until *any* envelope from the receiver
    /// carries a piggybacked cumulative ack past it, at which point the
    /// acked prefix is compacted out (set-union into the snapshot) and
    /// the tail drains.
    #[test]
    fn piggybacked_acks_drain_the_replay_tail() {
        let interner = Interner::new();
        let unit =
            gst_frontend::parser::parse_program_with("send(X) :- src(X).", &interner).unwrap();
        let src = (interner.intern("src"), 1);
        let send = (interner.get("send").unwrap(), 1);
        let inbox = (interner.intern("inbox"), 1);
        let mut db = Database::new(interner.clone());
        for k in 0..3i64 {
            db.insert(src, ituple![k]).unwrap();
        }
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program,
                outgoing: vec![crate::spec::ChannelOut { channel: send, dest: 1, inbox }],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        let mut core = WorkerCore::new(spec, 2).unwrap();
        let mut out = Recorder::default();
        while core.step(&mut out).unwrap() == Step::Worked {}

        assert!(
            out.sent.iter().any(|(to, env)| *to == 1 && matches!(env.message, Message::Batch { .. })),
            "the rule must actually ship a batch for the test to mean anything"
        );
        assert_eq!(core.replay_tail_len(1), 1, "shipped batch is retained for replay");

        // The receiver absorbed seq 0, so its watermark for our link is 1;
        // any envelope it sends back piggybacks that as the cumulative ack.
        core.enqueue(Envelope {
            from: 1,
            seq: 0,
            epoch: 0,
            ack: 1,
            message: Message::Token(TokenMsg { color: Color::White, count: 0, epoch: 0 }),
        });
        core.step(&mut out).unwrap();
        assert_eq!(core.replay_tail_len(1), 0, "acked prefix is compacted out of the tail");
    }

    /// The link-level recovery contract behind the TCP transport's
    /// reconnect: acks that arrived *before* a crash compact the sender's
    /// replay log, and the compacted prefix is **not** re-replayed after
    /// the epoch bump — a surviving peer whose watermark already covers
    /// it receives nothing, while a fresh incarnation (watermark 0) gets
    /// the full pre-epoch history.
    #[test]
    fn acked_prefix_is_not_replayed_after_epoch_bump() {
        let interner = Interner::new();
        let unit =
            gst_frontend::parser::parse_program_with("send(X) :- src(X).", &interner).unwrap();
        let src = (interner.intern("src"), 1);
        let send = (interner.get("send").unwrap(), 1);
        let inbox = (interner.intern("inbox"), 1);
        let mut db = Database::new(interner.clone());
        for k in 0..3i64 {
            db.insert(src, ituple![k]).unwrap();
        }
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program,
                outgoing: vec![
                    crate::spec::ChannelOut { channel: send, dest: 1, inbox },
                    crate::spec::ChannelOut { channel: send, dest: 2, inbox },
                ],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        let mut core = WorkerCore::new(spec, 3).unwrap();
        let mut out = Recorder::default();
        while core.step(&mut out).unwrap() == Step::Worked {}
        assert_eq!(core.replay_tail_len(1), 1, "one batch retained per destination");
        assert_eq!(core.replay_tail_len(2), 1);

        // Peer 1 acks seq 0 before anything crashes: the prefix is folded
        // into the snapshot and the tail drains.
        core.enqueue(Envelope {
            from: 1,
            seq: 0,
            epoch: 0,
            ack: 1,
            message: Message::Token(TokenMsg { color: Color::White, count: 0, epoch: 0 }),
        });
        core.step(&mut out).unwrap();
        assert_eq!(core.replay_tail_len(1), 0, "pre-crash ack compacts the tail");

        // Peer 2 crashes; the supervisor bumps the epoch. The core must
        // answer with an `AckSync` to every peer so replay can begin.
        core.enqueue(Envelope {
            from: 2,
            seq: 0,
            epoch: 1,
            ack: 0,
            message: Message::Recover { epoch: 1, restarted: 2 },
        });
        core.step(&mut out).unwrap();
        let acksyncs = out
            .sent
            .iter()
            .filter(|(_, env)| matches!(env.message, Message::AckSync { .. }))
            .map(|(to, _)| *to)
            .collect::<Vec<_>>();
        assert_eq!(acksyncs, vec![1, 2], "recovery handshake reaches every peer");
        let mark = out.sent.len();

        // The surviving peer's watermark already covers the compacted
        // prefix: its `AckSync` must trigger no retransmission at all.
        core.enqueue(Envelope {
            from: 1,
            seq: 1,
            epoch: 1,
            ack: 1,
            message: Message::AckSync { acked: 1 },
        });
        core.step(&mut out).unwrap();
        assert_eq!(
            out.sent.len(),
            mark,
            "an acked prefix is never re-replayed after the epoch bump"
        );
        assert_eq!(core.replayed_batches, 0);

        // The crashed peer's fresh incarnation starts at watermark 0 and
        // gets exactly the retained pre-epoch batch back.
        core.enqueue(Envelope {
            from: 2,
            seq: 0,
            epoch: 1,
            ack: 0,
            message: Message::AckSync { acked: 0 },
        });
        core.step(&mut out).unwrap();
        let replayed = out.sent[mark..]
            .iter()
            .filter(|(to, env)| *to == 2 && matches!(env.message, Message::Batch { .. }))
            .count();
        assert_eq!(replayed, 1, "the fresh incarnation receives the full history");
        assert_eq!(core.replayed_batches, 1);
    }

    /// A channel feeding several destinations (the broadcast scheme's
    /// shared head predicate) is encoded exactly once per fixpoint: every
    /// destination's envelope shares the same payload `Arc`, and the
    /// journal records one `encode` event for the two `send`s.
    #[test]
    fn broadcast_channel_is_encoded_once_and_shared() {
        let interner = Interner::new();
        let unit =
            gst_frontend::parser::parse_program_with("send(X) :- src(X).", &interner).unwrap();
        let src = (interner.intern("src"), 1);
        let send = (interner.get("send").unwrap(), 1);
        let inbox = (interner.intern("inbox"), 1);
        let mut db = Database::new(interner.clone());
        for k in 0..3i64 {
            db.insert(src, ituple![k]).unwrap();
        }
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program,
                outgoing: vec![
                    crate::spec::ChannelOut { channel: send, dest: 1, inbox },
                    crate::spec::ChannelOut { channel: send, dest: 2, inbox },
                ],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        let mut core = WorkerCore::new(spec, 3).unwrap();
        core.set_sink(TraceSink::virtual_clock(0));
        let mut out = Recorder::default();
        while core.step(&mut out).unwrap() == Step::Worked {}

        let payloads: Vec<Payload> = out
            .sent
            .iter()
            .filter_map(|(_, env)| match &env.message {
                Message::Batch { payload, .. } => Some(payload.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(payloads.len(), 2, "one batch per destination");
        assert!(
            Arc::ptr_eq(&payloads[0], &payloads[1]),
            "both destinations share the single encoding"
        );
        let events = core.take_trace_events();
        let encodes = events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::BatchEncoded { .. }))
            .count();
        let sends = events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::BatchSent { .. }))
            .count();
        assert_eq!(encodes, 1, "one encode per (fixpoint, channel relation)");
        assert_eq!(sends, 2, "but one send per destination");
    }

    /// Terminate wins over queued work: once absorbed, the core reports
    /// Done and stops stepping.
    #[test]
    fn terminate_short_circuits_pending_work() {
        let (mut core, _interner) = busy_core();
        let mut out = Recorder::default();
        core.enqueue(Envelope {
            from: 0,
            seq: 0,
            epoch: 0,
            ack: 0,
            message: Message::Terminate,
        });
        assert_eq!(core.step(&mut out).unwrap(), Step::Done);
        assert!(core.terminated());
        assert_eq!(core.step(&mut out).unwrap(), Step::Done, "Done is sticky");
    }
}
