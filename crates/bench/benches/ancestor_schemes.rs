//! E1/E2/E3: end-to-end parallel executions of the three §4 algorithms on
//! the same workload — the wall-clock counterpart of the harness's
//! communication table.

use gst_bench::micro::{Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::prelude::{example1_wolfson, example2_valduriez, example3_hash_partition};
use gst_frontend::LinearSirup;
use gst_storage::round_robin_fragment;
use gst_workloads::{linear_ancestor, random_digraph};

fn bench_schemes(c: &mut Criterion) {
    let n = 4;
    let fx = linear_ancestor();
    let edges = random_digraph(80, 200, 42);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let mut group = c.benchmark_group("ancestor-schemes");
    group.sample_size(10);

    let e1 = example1_wolfson(&sirup, n, &db).unwrap();
    group.bench_function("example1-zero-comm", |b| b.iter(|| e1.run().unwrap()));

    let e3 = example3_hash_partition(&sirup, n, &db).unwrap();
    group.bench_function("example3-hash-p2p", |b| b.iter(|| e3.run().unwrap()));

    let frag = round_robin_fragment(&edges, n).unwrap();
    let e2 = example2_valduriez(&sirup, frag, &db).unwrap();
    group.bench_function("example2-broadcast", |b| b.iter(|| e2.run().unwrap()));

    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
