//! Synchronous (bulk-synchronous) execution of processor programs.
//!
//! The paper presents the parallel execution as globally phased rounds:
//!
//! ```text
//! evaluate initialization rule
//! repeat
//!     evaluate processing rule
//!     evaluate sending rules
//!     evaluate receiving rules
//! until "termination"
//! ```
//!
//! and then *relaxes* it to the asynchronous execution the worker threads
//! implement ("the receives are asynchronous ... a very important
//! property"). This module keeps the strict phased form: every processor
//! advances, ships, and fires in lock step, with messages delivered at
//! the round boundary.
//!
//! Why have both?
//!
//! * **Determinism** — same input ⇒ identical rounds, message counts and
//!   batch boundaries, which makes experiments and regressions exactly
//!   reproducible (the async runtime's tuple totals are deterministic but
//!   its batching is schedule-dependent);
//! * **Trivial termination** — with global round boundaries, "all
//!   processors idle and all channels empty" is directly observable; no
//!   detector needed, which makes this mode a correctness oracle for the
//!   Safra-based async runtime (they must compute identical relations and
//!   ship identical tuple totals);
//! * **The paper's own framing** — §3's execution skeleton is exactly
//!   this loop.
//!
//! Batches still pass through the wire codec so byte accounting matches
//! the async runtime.

use std::time::Instant;

use gst_common::{FxHashMap, Result};
use gst_eval::plan::RelationId;
use gst_eval::FixpointEngine;
use gst_storage::Relation;

use crate::codec::{decode_batch, encode_batch};
use crate::simulate::{RoundRecord, RoundTrace};
use crate::spec::WorkerSpec;
use crate::stats::{ExecutionOutcome, ParallelStats, WorkerReport};

/// Execute the specs in globally synchronized rounds on the calling
/// thread. Produces the same relations (and the same total tuple traffic)
/// as [`crate::execute_processors`], deterministically.
pub fn execute_synchronous(specs: &[WorkerSpec]) -> Result<ExecutionOutcome> {
    execute_synchronous_traced(specs).map(|(outcome, _)| outcome)
}

/// [`execute_synchronous`], additionally recording the per-round trace
/// that [`crate::simulate::simulate_bsp`] replays under machine models.
pub fn execute_synchronous_traced(
    specs: &[WorkerSpec],
) -> Result<(ExecutionOutcome, RoundTrace)> {
    crate::transport::validate_specs(specs)?;

    let n = specs.len();
    let started = Instant::now();
    let mut engines: Vec<FixpointEngine> = specs
        .iter()
        .map(|w| w.build_engine())
        .collect::<Result<_>>()?;

    let mut busy = vec![std::time::Duration::ZERO; n];
    let mut sent_tuples_to = vec![vec![0u64; n]; n];
    let mut sent_bytes_to = vec![vec![0u64; n]; n];
    let mut sent_messages = vec![0u64; n];
    let mut received_tuples = vec![0u64; n];
    let mut received_bytes = vec![0u64; n];
    let mut encode_calls = vec![0u64; n];
    let mut encoded_bytes = vec![0u64; n];
    let mut encoded_raw_bytes = vec![0u64; n];
    let mut trace = RoundTrace {
        processors: n,
        rounds: Vec::new(),
    };
    let mut firings_seen = vec![0u64; n];
    // Capture the per-round increments for the trace.
    macro_rules! snapshot_round {
        ($round_tuples:expr, $round_batches:expr) => {{
            let mut record = RoundRecord {
                firings: Vec::with_capacity(n),
                sent_tuples: $round_tuples,
                sent_batches: $round_batches,
            };
            for (i, engine) in engines.iter().enumerate() {
                let now = engine.stats().firings;
                record.firings.push(now - firings_seen[i]);
                firings_seen[i] = now;
            }
            trace.rounds.push(record);
        }};
    }

    // Initialization.
    for (i, engine) in engines.iter_mut().enumerate() {
        let t0 = Instant::now();
        engine.bootstrap()?;
        busy[i] += t0.elapsed();
    }
    snapshot_round!(vec![vec![0; n]; n], vec![vec![0; n]; n]);

    // The phased loop: advance ∥ send ∥ receive ∥ process.
    loop {
        let mut fresh_total = 0u64;
        for (i, engine) in engines.iter_mut().enumerate() {
            let t0 = Instant::now();
            fresh_total += engine.advance();
            busy[i] += t0.elapsed();
        }
        if fresh_total == 0 {
            // All processors idle; with round-boundary delivery there are
            // no in-flight messages — the paper's termination condition,
            // observed directly.
            break;
        }

        // Sending: collect each processor's fresh channel deltas.
        let mut round_tuples = vec![vec![0u64; n]; n];
        let mut round_batches = vec![vec![0u64; n]; n];
        let mut deliveries: Vec<(usize, usize, RelationId, crate::message::Payload)> =
            Vec::new();
        for (i, engine) in engines.iter().enumerate() {
            // Single-encode multicast, mirroring the async ship path: one
            // payload per channel relation per round, its `Arc` shared by
            // every destination the channel feeds.
            let mut encoded: FxHashMap<RelationId, crate::message::Payload> =
                FxHashMap::default();
            for out in &specs[i].program.outgoing {
                if out.dest == i {
                    continue; // handled below against the same engine
                }
                let tuples = engine.delta_tuples(out.channel);
                if tuples.is_empty() {
                    continue;
                }
                let payload = match encoded.get(&out.channel) {
                    Some(p) => p.clone(),
                    None => {
                        let p = encode_batch(out.channel.1, tuples)?;
                        encode_calls[i] += 1;
                        encoded_bytes[i] += p.len() as u64;
                        encoded_raw_bytes[i] +=
                            crate::codec::row_format_bytes(out.channel.1, tuples.len());
                        encoded.insert(out.channel, p.clone());
                        p
                    }
                };
                sent_tuples_to[i][out.dest] += tuples.len() as u64;
                sent_bytes_to[i][out.dest] += payload.len() as u64;
                sent_messages[i] += 1;
                round_tuples[i][out.dest] += tuples.len() as u64;
                round_batches[i][out.dest] += 1;
                deliveries.push((i, out.dest, out.inbox, payload));
            }
        }
        // Local loopback channels (dest == self) inject directly.
        for (i, engine) in engines.iter_mut().enumerate() {
            for out in &specs[i].program.outgoing {
                if out.dest == i {
                    engine.loopback(out.channel, out.inbox)?;
                }
            }
        }

        // Receiving: deliver every batch at the round boundary.
        for (_from, dest, inbox, payload) in deliveries {
            received_bytes[dest] += payload.len() as u64;
            let tuples = decode_batch(&payload)?;
            received_tuples[dest] += tuples.len() as u64;
            engines[dest].inject(inbox, tuples)?;
        }

        // Processing.
        for (i, engine) in engines.iter_mut().enumerate() {
            let t0 = Instant::now();
            engine.process_round();
            busy[i] += t0.elapsed();
        }
        snapshot_round!(round_tuples, round_batches);
    }

    // Final pooling.
    let mut relations: FxHashMap<RelationId, Relation> = FxHashMap::default();
    let mut pooled_tuples = vec![0u64; n];
    for (i, engine) in engines.iter_mut().enumerate() {
        for (local, global) in specs[i].program.pooling.clone() {
            if let Some(rel) = engine.take_relation(local) {
                pooled_tuples[i] += rel.len() as u64;
                match relations.entry(global) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(rel);
                    }
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        slot.get_mut().absorb_owned(rel)?;
                    }
                }
            }
        }
    }

    let workers: Vec<WorkerReport> = engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let eval = engine.stats().clone();
            let processing_firings =
                eval.firings_for_rules(&specs[i].program.processing_rules);
            // The BSP trace already has the per-round channel traffic;
            // fold it into the same sparse series the async runtime
            // reports.
            let sent_per_round: Vec<(u64, u64)> = trace
                .rounds
                .iter()
                .enumerate()
                .filter_map(|(r, rec)| {
                    let total: u64 = rec.sent_tuples[i]
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, &v)| v)
                        .sum();
                    (total > 0).then_some((r as u64, total))
                })
                .collect();
            WorkerReport {
                processor: i,
                eval,
                processing_firings,
                sent_tuples_to: sent_tuples_to[i].clone(),
                sent_bytes_to: sent_bytes_to[i].clone(),
                sent_messages: sent_messages[i],
                received_tuples: received_tuples[i],
                received_bytes: received_bytes[i],
                encode_calls: encode_calls[i],
                encoded_bytes: encoded_bytes[i],
                encoded_raw_bytes: encoded_raw_bytes[i],
                duplicate_batches: 0,
                replayed_batches: 0,
                stale_dropped: 0,
                retract_tuples_sent: 0,
                retract_tuples_received: 0,
                pooled_tuples: pooled_tuples[i],
                busy: busy[i],
                sent_per_round,
                profile: None,
            }
        })
        .collect();
    let channel_matrix = sent_tuples_to;

    Ok((
        ExecutionOutcome {
            relations,
            stats: ParallelStats {
                workers,
                channel_matrix,
                restarts: 0,
                reconnects: 0,
                relay_bytes: 0,
                wall_time: started.elapsed(),
            },
            journal: crate::obs::Journal::default(),
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{execute_processors, RuntimeConfig};
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_frontend::parser::parse_program_with;
    use gst_storage::Database;
    use std::sync::Arc;

    /// A two-processor ping-pong: each side extends paths with its own
    /// half of the edges and ships the frontier to the other side.
    fn ping_pong_specs() -> (Vec<WorkerSpec>, RelationId, RelationId) {
        let interner = Interner::new();
        // Worker 0 owns even→odd edges, worker 1 odd→even; paths
        // alternate, so every extension crosses the boundary.
        let unit0 = parse_program_with(
            "t0(X,Y) :- e0(X,Y).\n\
             t0(X,Y) :- e0(X,Z), in0(Z,Y).\n\
             ship0(Z,Y) :- t0(Z,Y).",
            &interner,
        )
        .unwrap();
        let unit1 = parse_program_with(
            "t1(X,Y) :- e1(X,Z), in1(Z,Y).\n\
             ship1(Z,Y) :- t1(Z,Y).",
            &interner,
        )
        .unwrap();
        let e0 = (interner.get("e0").unwrap(), 2);
        let e1 = (interner.get("e1").unwrap(), 2);
        let t0 = (interner.get("t0").unwrap(), 2);
        let t1 = (interner.get("t1").unwrap(), 2);
        let in0 = (interner.intern("in0"), 2);
        let in1 = (interner.intern("in1"), 2);
        let ship0 = (interner.get("ship0").unwrap(), 2);
        let ship1 = (interner.get("ship1").unwrap(), 2);
        let answer = (interner.intern("t"), 2);

        let mut db0 = Database::new(interner.clone());
        let mut db1 = Database::new(interner.clone());
        // A chain 0→1→2→…→6 alternating ownership.
        for k in 0..6i64 {
            let id = if k % 2 == 0 { e0 } else { e1 };
            let db = if k % 2 == 0 { &mut db0 } else { &mut db1 };
            db.insert(id, ituple![k, k + 1]).unwrap();
        }

        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut {
                    channel: ship0,
                    dest: 1,
                    inbox: in1,
                }],
                inboxes: vec![in0],
                processing_rules: vec![0, 1],
                pooling: vec![(t0, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db0),
            session: None,
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![ChannelOut {
                    channel: ship1,
                    dest: 0,
                    inbox: in0,
                }],
                inboxes: vec![in1],
                processing_rules: vec![0],
                pooling: vec![(t1, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db1),
            session: None,
        };
        (vec![spec0, spec1], answer, t0)
    }

    #[test]
    fn synchronous_equals_asynchronous() {
        let (specs, answer, _) = ping_pong_specs();
        let sync = execute_synchronous(&specs).unwrap();
        let async_ = execute_processors(specs, &RuntimeConfig::default()).unwrap();
        assert!(sync.relation(answer).set_eq(&async_.relation(answer)));
        assert_eq!(
            sync.stats.total_tuples_sent(),
            async_.stats.total_tuples_sent(),
            "delta shipping sends each tuple exactly once in both modes"
        );
        assert!(!sync.relation(answer).is_empty());
    }

    #[test]
    fn synchronous_is_deterministic() {
        let (specs, _, _) = ping_pong_specs();
        let a = execute_synchronous(&specs).unwrap();
        let b = execute_synchronous(&specs).unwrap();
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
        assert_eq!(a.stats.channel_matrix, b.stats.channel_matrix);
        assert_eq!(a.stats.total_bytes_sent(), b.stats.total_bytes_sent());
        assert_eq!(
            a.stats.workers[0].eval.rounds,
            b.stats.workers[0].eval.rounds
        );
    }

    #[test]
    fn byte_accounting_matches_codec() {
        let (specs, _, _) = ping_pong_specs();
        let outcome = execute_synchronous(&specs).unwrap();
        // Every byte sent is received by someone.
        let sent: u64 = outcome.stats.total_bytes_sent();
        let received: u64 = outcome.stats.workers.iter().map(|w| w.received_bytes).sum();
        assert_eq!(sent, received);
        assert!(sent > 0);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(execute_synchronous(&[]).is_err());
        let (mut specs, _, _) = ping_pong_specs();
        specs[1].program.processor = 7;
        assert!(execute_synchronous(&specs).is_err());
    }
}
