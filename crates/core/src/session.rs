//! Incremental view maintenance over a compiled scheme: live EDB
//! inserts and deletes without recomputing from scratch.
//!
//! An [`UpdateSession`] wraps a [`CompiledScheme`] and keeps, between
//! update rounds, every worker's **maintained state**: its local answer
//! shards (`t@out^i`, the pooled head predicates), its inbox replicas
//! (`t@in^i` — joinable copies of remote derivations, which must be
//! maintained exactly like the shards), and its replica of every
//! updatable base predicate. Channels are *not* maintained: they are
//! transient per-round transport predicates, re-derived empty at the
//! start of every phase, which is what keeps the runtime's ship
//! watermarks (`from_row = 0`) correct without any plumbing.
//!
//! Each update round applies one [`UpdateBatch`] in two phases:
//!
//! 1. **Over-deletion (DRed phase A)** — a *deletion-cone* program is
//!    derived mechanically from each worker's rules: for every rule and
//!    every dynamic body atom, a rule `del(head) :- …, del(atom), …`
//!    whose other atoms read the pre-delete maintained state (shipped
//!    into the phase as plain base facts). The cone is itself a
//!    monotone Datalog fixpoint, so it runs on the unmodified parallel
//!    runtime — same semi-naive deltas, same Safra termination, same
//!    crash recovery — with its channels flagged as
//!    [retract channels](gst_runtime::ProcessorProgram::retract_channels)
//!    so deletion traffic is accounted separately on the wire.
//!    Everything the cone reaches is tombstoned out of the maintained
//!    state (arena rows keep their slots; see `gst_storage`).
//!
//! 2. **Rederivation + inserts (phase B)** — one naive firing of the
//!    *source* program over the surviving global state
//!    ([`gst_eval::fire_once`]) finds every over-deleted tuple that is
//!    still one-step derivable from live support; those seeds, plus the
//!    batch's base inserts, are injected into the workers' pending
//!    pools while the surviving state is preseeded with an empty delta
//!    ([`gst_runtime::SessionSeed`]). The ordinary semi-naive loop then
//!    cascades: seeds become deltas, deltas fire rules, sending rules
//!    ship fresh derivations, and the distributed fixpoint converges to
//!    exactly the least model of the updated database.
//!
//! Base predicates are listed as
//! [`local_idb`](gst_runtime::ProcessorProgram::local_idb) in session
//! mode so base *inserts* flow through the same delta machinery as
//! derived tuples (a rule joining a new base fact against old derived
//! state must refire, which requires delta plan versions for base
//! atoms). Batch-mode compilation leaves `local_idb` empty, so batch
//! plans, firings, and wire bytes are unchanged by this module.

use std::sync::Arc;

use gst_common::{Error, FxHashMap, Interner, Result, Tuple};
use gst_eval::fire_once;
use gst_eval::plan::RelationId;
use gst_frontend::ast::Literal;
use gst_frontend::Program;
use gst_runtime::{
    ChannelOut, ExecutionOutcome, ParallelStats, ProcessorProgram, RuntimeConfig, SessionSeed,
    Transport, WorkerSpec,
};
use gst_storage::{Database, Relation};

use crate::schemes::common::{atom, Namer};
use crate::schemes::CompiledScheme;

/// One batch of base-fact updates, applied atomically by
/// [`UpdateSession::apply`]. Deletes are applied before inserts, so a
/// tuple both deleted and inserted in one batch ends up present.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Tuples added to base predicates.
    pub inserts: Vec<(RelationId, Tuple)>,
    /// Tuples removed from base predicates. Deleting an absent tuple is
    /// a no-op.
    pub deletes: Vec<(RelationId, Tuple)>,
}

impl UpdateBatch {
    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What one update round did — the session's per-round statistics, the
/// maintenance counterpart of a batch run's [`ParallelStats`].
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number (0 = the initial fixpoint).
    pub round: u64,
    /// Base tuples actually deleted (present before the batch).
    pub deleted_base: u64,
    /// Base tuples submitted for insertion.
    pub inserted_base: u64,
    /// Derived tuples tombstoned by the over-deletion cone, summed over
    /// worker shards and inbox replicas.
    pub overdeleted: u64,
    /// Rederivation seeds found by the one-step probe over surviving
    /// state (tuples the cone removed that are still derivable).
    pub rederive_seeds: u64,
    /// Runtime statistics of the over-deletion run (`None` when the
    /// batch had no effective deletes and phase A was skipped).
    pub phase_a: Option<ParallelStats>,
    /// Runtime statistics of the rederive/insert run (`None` only for a
    /// round that had nothing at all to do).
    pub phase_b: Option<ParallelStats>,
}

/// A live, incrementally maintained parallel Datalog view.
///
/// Build with [`UpdateSession::new`], run the initial fixpoint with
/// [`UpdateSession::initialize`], then feed [`UpdateBatch`]es through
/// [`UpdateSession::apply`]. [`UpdateSession::answer`] returns the
/// maintained global relation for any answer predicate; after every
/// round it is bit-identical (as a set) to recomputing the scheme from
/// scratch over the updated database.
pub struct UpdateSession {
    source: Program,
    interner: Interner,
    /// Session-mode worker templates: batch workers with base
    /// predicates promoted to `local_idb` and pooling redirected to
    /// per-worker capture predicates.
    workers: Vec<WorkerSpec>,
    /// Per worker: every local predicate whose state is maintained
    /// across rounds (answer shards + inbox replicas + base replicas).
    maintained: Vec<Vec<RelationId>>,
    /// Per worker: the derived subset of `maintained` (shards and
    /// inboxes — the predicates the deletion cone tombstones), each
    /// paired with the global answer predicate it replicates. A local
    /// with no known global (a scheme-internal auxiliary) is paired
    /// with itself and tombstoned per-worker only.
    derived_global: Vec<Vec<(RelationId, RelationId)>>,
    /// `(answer predicate, [(worker, local shard)])` from the original
    /// batch-mode pooling — how maintained shards union into answers.
    by_answer: Vec<(RelationId, Vec<(usize, RelationId)>)>,
    /// Updatable base predicates (every EDB predicate the rules read).
    base_preds: Vec<RelationId>,
    /// The current global extensional database (tombstoned in place).
    global_edb: Database,
    /// `state[i][local]` — worker `i`'s maintained relations.
    state: Vec<FxHashMap<RelationId, Relation>>,
    /// Per-round reports, `[0]` being the initial fixpoint.
    reports: Vec<RoundReport>,
}

/// `pred` with `suffix` appended to its name, same arity. Suffixes use
/// `~`, outside the surface grammar, so session predicates can never
/// collide with source or scheme (`@`-suffixed) predicates.
fn suffixed(interner: &Interner, pred: RelationId, suffix: &str) -> RelationId {
    let name = format!("{}{}", interner.resolve(pred.0), suffix);
    (interner.intern(&name), pred.1)
}

/// The deletion-cone twin `pred~del` of a dynamic predicate.
fn del_id(interner: &Interner, pred: RelationId) -> RelationId {
    suffixed(interner, pred, "~del")
}

/// The capture predicate worker `i` pools `pred`'s final state into.
/// Local predicate names repeat across workers (base replicas), so the
/// worker index is part of the name.
fn cap_id(interner: &Interner, pred: RelationId, i: usize) -> RelationId {
    suffixed(interner, pred, &format!("~cap{i}"))
}

/// A copy of `rel` holding only its live rows (tombstones dropped).
fn live_clone(rel: &Relation) -> Relation {
    if rel.dead_count() == 0 {
        return rel.clone();
    }
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        out.insert_unchecked(t.clone());
    }
    out
}

impl UpdateSession {
    /// Wrap a compiled scheme for incremental maintenance. `source` is
    /// the original (unrewritten) program — the rederivation probe runs
    /// it over global state — and `db` the initial extensional
    /// database.
    pub fn new(scheme: &CompiledScheme, source: &Program, db: &Database) -> Result<Self> {
        let interner = source.interner.clone();
        let n = scheme.workers.len();

        // Updatable base predicates: every body atom the worker rules
        // read that is neither a local head nor an inbox.
        let mut base_preds: Vec<RelationId> = Vec::new();
        for spec in &scheme.workers {
            let pp = &spec.program;
            let idb: Vec<RelationId> = pp
                .program
                .rules
                .iter()
                .map(|r| (r.head.predicate, r.head.terms.len()))
                .chain(pp.inboxes.iter().copied())
                .collect();
            for rule in &pp.program.rules {
                for a in rule.body_atoms() {
                    let id: RelationId = (a.predicate, a.terms.len());
                    if !idb.contains(&id) && !base_preds.contains(&id) {
                        base_preds.push(id);
                    }
                }
            }
        }
        base_preds.sort();

        let namer = Namer::new(interner.clone());
        let mut workers = Vec::with_capacity(n);
        let mut maintained = Vec::with_capacity(n);
        let mut derived_global = Vec::with_capacity(n);
        let mut by_answer: Vec<(RelationId, Vec<(usize, RelationId)>)> = Vec::new();
        for spec in &scheme.workers {
            let i = spec.program.processor;
            let mut derived: Vec<RelationId> =
                spec.program.pooling.iter().map(|&(local, _)| local).collect();
            for &inbox in &spec.program.inboxes {
                if !derived.contains(&inbox) {
                    derived.push(inbox);
                }
            }
            // Which global answer predicate each derived local is a
            // replica of: shards say so in the pooling pairs, inbox
            // replicas follow the scheme namer's `@in` convention.
            let globals: Vec<(RelationId, RelationId)> = derived
                .iter()
                .map(|&local| {
                    let global = spec
                        .program
                        .pooling
                        .iter()
                        .find(|&&(l, _)| l == local)
                        .map(|&(_, g)| g)
                        .or_else(|| {
                            scheme
                                .answers
                                .iter()
                                .copied()
                                .find(|&g| namer.input(g, i) == local)
                        })
                        .unwrap_or(local);
                    (local, global)
                })
                .collect();
            let mut locals = derived.clone();
            for &p in &base_preds {
                if !locals.contains(&p) {
                    locals.push(p);
                }
            }
            for &(local, global) in &spec.program.pooling {
                match by_answer.iter_mut().find(|(g, _)| *g == global) {
                    Some((_, shards)) => shards.push((i, local)),
                    None => by_answer.push((global, vec![(i, local)])),
                }
            }
            let mut program = spec.program.clone();
            program.local_idb = base_preds.clone();
            program.pooling = locals
                .iter()
                .map(|&l| (l, cap_id(&interner, l, i)))
                .collect();
            workers.push(WorkerSpec {
                program,
                edb: Arc::clone(&spec.edb),
                session: None,
            });
            maintained.push(locals);
            derived_global.push(globals);
        }

        Ok(UpdateSession {
            source: source.clone(),
            interner,
            workers,
            maintained,
            derived_global,
            by_answer,
            base_preds,
            global_edb: db.clone(),
            state: Vec::new(),
            reports: Vec::new(),
        })
    }

    /// True once [`UpdateSession::initialize`] has run.
    pub fn initialized(&self) -> bool {
        !self.state.is_empty()
    }

    /// Rounds executed so far, including the initial fixpoint.
    pub fn rounds(&self) -> u64 {
        self.reports.len() as u64
    }

    /// Per-round reports, `[0]` being the initial fixpoint.
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// The maintained global relation for an answer predicate: the live
    /// union of every worker's shard. Empty before initialization or
    /// for a predicate the scheme does not pool.
    pub fn answer(&self, pred: RelationId) -> Relation {
        let mut out = Relation::new(pred.1);
        if let Some((_, shards)) = self.by_answer.iter().find(|(g, _)| *g == pred) {
            for &(i, local) in shards {
                if let Some(rel) = self.state.get(i).and_then(|m| m.get(&local)) {
                    for t in rel.iter() {
                        out.insert_unchecked(t.clone());
                    }
                }
            }
        }
        out
    }

    /// The current global extensional database (tombstones included).
    pub fn edb(&self) -> &Database {
        &self.global_edb
    }

    /// Round 0: run the initial distributed fixpoint and capture every
    /// worker's state.
    pub fn initialize<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        config: &RuntimeConfig,
    ) -> Result<&RoundReport> {
        if self.initialized() {
            return Err(Error::Runtime("update session already initialized".into()));
        }
        let outcome = transport.execute(self.workers.clone(), config)?;
        self.capture(&outcome);
        self.reports.push(RoundReport {
            round: 0,
            deleted_base: 0,
            inserted_base: 0,
            overdeleted: 0,
            rederive_seeds: 0,
            phase_a: None,
            phase_b: Some(outcome.stats),
        });
        Ok(self.reports.last().expect("just pushed"))
    }

    /// Apply one update batch: over-delete (DRed phase A), tombstone,
    /// rederive + insert (phase B), and recapture the maintained state.
    pub fn apply<T: Transport + ?Sized>(
        &mut self,
        batch: &UpdateBatch,
        transport: &T,
        config: &RuntimeConfig,
    ) -> Result<&RoundReport> {
        if !self.initialized() {
            return Err(Error::Runtime(
                "update session must be initialized before applying batches".into(),
            ));
        }
        for (pred, _) in batch.inserts.iter().chain(batch.deletes.iter()) {
            if !self.base_preds.contains(pred) {
                return Err(Error::Shape(format!(
                    "updates must target base predicates; {}/{} is not one",
                    self.interner.resolve(pred.0),
                    pred.1
                )));
            }
        }
        let round = self.reports.len() as u64;

        // Effective deletes: tuples actually present. Absent deletes
        // would seed a cone over nothing — skip them up front so an
        // all-absent batch skips phase A entirely.
        let deletes: Vec<(RelationId, Tuple)> = batch
            .deletes
            .iter()
            .filter(|(p, t)| self.global_edb.relation(*p).is_some_and(|r| r.contains(t)))
            .cloned()
            .collect();

        // ---- Phase A: distributed over-deletion ---------------------
        let mut overdeleted = 0u64;
        let mut phase_a = None;
        if !deletes.is_empty() {
            let specs = self.delete_specs(&deletes)?;
            let outcome = transport.execute(specs, config)?;
            // The cone names a tuple for deletion at the worker its
            // supporting *rule* discriminates to, but live copies of
            // the same tuple can sit in other workers' shards (another
            // rule derives it elsewhere) and in inbox replicas the
            // mirrored routing never visits. Over-deletion is a global
            // property of the answer predicate: union the cone across
            // all replicas first, then tombstone every replica of
            // every named tuple.
            let mut cones: Vec<(RelationId, Relation)> = Vec::new();
            for i in 0..self.workers.len() {
                for &(local, global) in &self.derived_global[i] {
                    let cone =
                        outcome.relation(cap_id(&self.interner, del_id(&self.interner, local), i));
                    if cone.is_empty() {
                        continue;
                    }
                    let slot = match cones.iter().position(|(g, _)| *g == global) {
                        Some(k) => k,
                        None => {
                            cones.push((global, Relation::new(global.1)));
                            cones.len() - 1
                        }
                    };
                    for t in cone.iter() {
                        cones[slot].1.insert_unchecked(t.clone());
                    }
                }
            }
            for i in 0..self.workers.len() {
                for &(local, global) in &self.derived_global[i] {
                    let Some((_, named)) = cones.iter().find(|(g, _)| *g == global) else {
                        continue;
                    };
                    let replica = self.state[i].get_mut(&local).expect("maintained local");
                    for t in named.iter() {
                        if replica.delete(t) {
                            overdeleted += 1;
                        }
                    }
                }
            }
            for (p, t) in &deletes {
                self.global_edb.delete(*p, t);
                for map in self.state.iter_mut() {
                    map.get_mut(p).expect("maintained base").delete(t);
                }
            }
            phase_a = Some(outcome.stats);
        }

        // ---- Rederivation probe -------------------------------------
        // One naive firing of the source program over the surviving
        // global state; emissions not already present are the DRed
        // rederivation seeds (their consequences cascade in phase B).
        let mut seeds: Vec<(RelationId, Vec<Tuple>)> = Vec::new();
        let mut seed_count = 0u64;
        if !deletes.is_empty() {
            let answers: Vec<(RelationId, Relation)> = self
                .by_answer
                .iter()
                .map(|(g, _)| (*g, self.answer(*g)))
                .collect();
            let mut merged = Database::new(self.interner.clone());
            for &p in &self.base_preds {
                if let Some(rel) = self.global_edb.relation(p) {
                    merged.put_relation(p, live_clone(rel))?;
                }
            }
            for (g, rel) in &answers {
                merged.put_relation(*g, rel.clone())?;
            }
            for (head, emitted) in fire_once(&self.source, &merged)? {
                let existing = answers
                    .iter()
                    .find(|(g, _)| *g == head)
                    .map(|(_, rel)| rel);
                let mut fresh = Relation::new(head.1);
                let mut out = Vec::new();
                for t in emitted {
                    if existing.is_some_and(|rel| rel.contains(&t)) {
                        continue;
                    }
                    if fresh.insert_unchecked(t.clone()) {
                        out.push(t);
                    }
                }
                if !out.is_empty() {
                    seed_count += out.len() as u64;
                    seeds.push((head, out));
                }
            }
        }

        // ---- Phase B: preseed survivors, inject seeds + inserts -----
        let mut inserted = 0u64;
        for (p, t) in &batch.inserts {
            self.global_edb.insert(*p, t.clone())?;
            inserted += 1;
        }
        let mut phase_b = None;
        if !deletes.is_empty() || !batch.inserts.is_empty() {
            let mut specs = self.workers.clone();
            for spec in &mut specs {
                let i = spec.program.processor;
                let preseed: Vec<(RelationId, Relation)> = self.maintained[i]
                    .iter()
                    .map(|&l| (l, self.state[i][&l].clone()))
                    .collect();
                let mut inject: Vec<(RelationId, Vec<Tuple>)> = Vec::new();
                // Rederivation seeds are injected into every worker's
                // answer shard: the local-copy and sending rules fan
                // each seed out to exactly the inbox replicas that need
                // it, and set semantics absorbs the redundancy.
                for (g, tuples) in &seeds {
                    for &(w, local) in &self
                        .by_answer
                        .iter()
                        .find(|(answer, _)| answer == g)
                        .expect("seed heads are answer predicates")
                        .1
                    {
                        if w == i {
                            inject.push((local, tuples.clone()));
                        }
                    }
                }
                // Base inserts broadcast to every replica; the rules'
                // discriminating constraints keep processing partitioned.
                for &p in &self.base_preds {
                    let tuples: Vec<Tuple> = batch
                        .inserts
                        .iter()
                        .filter(|(ip, _)| *ip == p)
                        .map(|(_, t)| t.clone())
                        .collect();
                    if !tuples.is_empty() {
                        inject.push((p, tuples));
                    }
                }
                spec.session = Some(Arc::new(SessionSeed { preseed, inject }));
            }
            let outcome = transport.execute(specs, config)?;
            self.capture(&outcome);
            phase_b = Some(outcome.stats);
        }

        self.reports.push(RoundReport {
            round,
            deleted_base: deletes.len() as u64,
            inserted_base: inserted,
            overdeleted,
            rederive_seeds: seed_count,
            phase_a,
            phase_b,
        });
        Ok(self.reports.last().expect("just pushed"))
    }

    /// Store every worker's captured relations as the maintained state.
    fn capture(&mut self, outcome: &ExecutionOutcome) {
        let n = self.workers.len();
        if self.state.is_empty() {
            self.state = (0..n).map(|_| FxHashMap::default()).collect();
        }
        for i in 0..n {
            for &local in &self.maintained[i] {
                self.state[i].insert(local, outcome.relation(cap_id(&self.interner, local, i)));
            }
        }
    }

    /// Build the phase-A (over-deletion) worker specs for one batch of
    /// effective base deletes.
    ///
    /// For every worker rule and every *dynamic* body atom (a local
    /// head, an inbox, or a base predicate — anything whose content
    /// depends on updatable input), a cone rule is emitted with the
    /// head and that one atom renamed to their `~del` twins; all other
    /// literals (including the discriminating constraints) are kept
    /// verbatim and read the pre-delete maintained state, shipped into
    /// the phase as plain base facts. The cone thus retraces exactly
    /// the original derivations' routing, so every shard and inbox copy
    /// of an affected tuple receives a deletion marker at the worker
    /// that holds it.
    fn delete_specs(&self, deletes: &[(RelationId, Tuple)]) -> Result<Vec<WorkerSpec>> {
        let interner = &self.interner;
        let mut specs = Vec::with_capacity(self.workers.len());
        for spec in &self.workers {
            let pp = &spec.program;
            let i = pp.processor;
            let mut dynamic: Vec<RelationId> = pp
                .program
                .rules
                .iter()
                .map(|r| (r.head.predicate, r.head.terms.len()))
                .collect();
            for &id in pp.inboxes.iter().chain(self.base_preds.iter()) {
                if !dynamic.contains(&id) {
                    dynamic.push(id);
                }
            }

            let mut rules = Vec::new();
            let mut processing_rules = Vec::new();
            for (k, rule) in pp.program.rules.iter().enumerate() {
                let head_id: RelationId = (rule.head.predicate, rule.head.terms.len());
                for (pos, literal) in rule.body.iter().enumerate() {
                    let Literal::Atom(a) = literal else { continue };
                    let id: RelationId = (a.predicate, a.terms.len());
                    if !dynamic.contains(&id) {
                        continue;
                    }
                    let mut body = rule.body.clone();
                    body[pos] =
                        Literal::Atom(atom(del_id(interner, id), a.terms.clone()));
                    let candidate = gst_frontend::Rule::new(
                        atom(del_id(interner, head_id), rule.head.terms.clone()),
                        body,
                    );
                    if !rules.contains(&candidate) {
                        if pp.processing_rules.contains(&k) {
                            processing_rules.push(rules.len());
                        }
                        rules.push(candidate);
                    }
                }
            }

            let outgoing: Vec<ChannelOut> = pp
                .outgoing
                .iter()
                .map(|c| ChannelOut {
                    channel: del_id(interner, c.channel),
                    dest: c.dest,
                    inbox: del_id(interner, c.inbox),
                })
                .collect();
            let mut retract_channels: Vec<RelationId> = Vec::new();
            for c in &outgoing {
                if !retract_channels.contains(&c.channel) {
                    retract_channels.push(c.channel);
                }
            }
            let inboxes: Vec<RelationId> =
                pp.inboxes.iter().map(|&x| del_id(interner, x)).collect();
            // The deletion seeds arrive as base facts of the `~del`
            // twins; listing the twins in local_idb makes bootstrap
            // move them into the pending pools (the cone's round-0
            // deltas).
            let local_idb: Vec<RelationId> = self
                .base_preds
                .iter()
                .map(|&p| del_id(interner, p))
                .collect();
            let pooling: Vec<(RelationId, RelationId)> = self.derived_global[i]
                .iter()
                .map(|&(l, _)| {
                    let d = del_id(interner, l);
                    (d, cap_id(interner, d, i))
                })
                .collect();

            // Phase-A database: the worker's pre-delete maintained
            // state (live rows only) plus the broadcast deletion seeds.
            let mut db = Database::new(interner.clone());
            for &l in &self.maintained[i] {
                db.put_relation(l, live_clone(&self.state[i][&l]))?;
            }
            for &p in &self.base_preds {
                let mut seed = Relation::new(p.1);
                for (dp, t) in deletes {
                    if *dp == p {
                        seed.insert_unchecked(t.clone());
                    }
                }
                db.put_relation(del_id(interner, p), seed)?;
            }

            specs.push(WorkerSpec {
                program: ProcessorProgram {
                    processor: i,
                    program: Program::new(rules, interner.clone()),
                    outgoing,
                    inboxes,
                    processing_rules,
                    pooling,
                    local_idb,
                    retract_channels,
                },
                edb: Arc::new(db),
                session: None,
            });
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::{DiscriminatorRef, HashMod};
    use crate::schemes::general::{rewrite_general, RuleChoice};
    use crate::schemes::BaseDistribution;
    use gst_common::ituple;
    use gst_eval::seminaive_eval;
    use gst_frontend::ast::Variable;
    use gst_runtime::{SimTransport, ThreadedTransport};
    use gst_workloads::{chain, linear_ancestor, nonlinear_ancestor, random_digraph};

    fn var(p: &Program, name: &str) -> Variable {
        Variable(p.interner.get(name).unwrap())
    }

    /// Linear transitive closure over 3 workers (the §7 general scheme),
    /// wrapped in an update session. Returns (session, anc, edge).
    fn tc_session(edges: &Relation) -> (UpdateSession, Program, RelationId, RelationId) {
        let fx = linear_ancestor();
        let db = fx.database(edges);
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 19));
        let choices = vec![
            RuleChoice { v: vec![var(&fx.program, "Y")], h: h.clone() },
            RuleChoice { v: vec![var(&fx.program, "Z")], h },
        ];
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let session = UpdateSession::new(&scheme, &fx.program, &db).unwrap();
        let (anc, edge) = (fx.output_id(), fx.input_id(0));
        (session, fx.program, anc, edge)
    }

    /// The maintained answer must equal recomputing the source program
    /// from scratch over the session's current global database.
    fn assert_differential(session: &UpdateSession, source: &Program, pred: RelationId) {
        let oracle = seminaive_eval(source, session.edb()).unwrap();
        let maintained = session.answer(pred);
        assert!(
            maintained.set_eq(&oracle.relation(pred)),
            "maintained view diverged from recompute: {} vs {} tuples",
            maintained.len(),
            oracle.relation(pred).len()
        );
    }

    #[test]
    fn insert_delete_mixed_rounds_match_recompute() {
        let (mut session, source, anc, edge) = tc_session(&chain(10));
        let t = ThreadedTransport;
        let cfg = RuntimeConfig::default();

        let r0 = session.initialize(&t, &cfg).unwrap();
        assert_eq!(r0.round, 0);
        assert_differential(&session, &source, anc);

        // Insert-only round: phase A (over-deletion) is skipped.
        let grow = UpdateBatch {
            inserts: vec![(edge, ituple![10, 11]), (edge, ituple![11, 12])],
            deletes: vec![],
        };
        let r1 = session.apply(&grow, &t, &cfg).unwrap();
        assert_eq!((r1.round, r1.inserted_base, r1.deleted_base), (1, 2, 0));
        assert!(r1.phase_a.is_none() && r1.phase_b.is_some());
        assert_differential(&session, &source, anc);

        // Delete-only round: splitting the chain kills a whole cone.
        let cut = UpdateBatch {
            inserts: vec![],
            deletes: vec![(edge, ituple![5, 6])],
        };
        let r2 = session.apply(&cut, &t, &cfg).unwrap();
        assert_eq!(r2.deleted_base, 1);
        assert!(r2.overdeleted > 0, "cutting the chain must tombstone derived facts");
        assert_differential(&session, &source, anc);

        // Mixed round: heal the cut, cut somewhere else.
        let mixed = UpdateBatch {
            inserts: vec![(edge, ituple![5, 6])],
            deletes: vec![(edge, ituple![0, 1])],
        };
        session.apply(&mixed, &t, &cfg).unwrap();
        assert_differential(&session, &source, anc);

        // Cycle round: a back edge, then a cut that must rederive
        // through the cycle (the classic DRed stress case).
        let back = UpdateBatch {
            inserts: vec![(edge, ituple![12, 3])],
            deletes: vec![],
        };
        session.apply(&back, &t, &cfg).unwrap();
        assert_differential(&session, &source, anc);
        let through = UpdateBatch {
            inserts: vec![],
            deletes: vec![(edge, ituple![6, 7])],
        };
        session.apply(&through, &t, &cfg).unwrap();
        assert_differential(&session, &source, anc);
        assert_eq!(session.rounds(), 6);
    }

    #[test]
    fn deleting_absent_tuples_is_a_no_op_round() {
        let (mut session, source, anc, edge) = tc_session(&chain(6));
        let t = ThreadedTransport;
        let cfg = RuntimeConfig::default();
        session.initialize(&t, &cfg).unwrap();
        let before = session.answer(anc);
        let phantom = UpdateBatch {
            inserts: vec![],
            deletes: vec![(edge, ituple![99, 100])],
        };
        let r = session.apply(&phantom, &t, &cfg).unwrap();
        assert_eq!(r.deleted_base, 0);
        assert!(r.phase_a.is_none() && r.phase_b.is_none());
        assert!(session.answer(anc).set_eq(&before));
        assert_differential(&session, &source, anc);
    }

    #[test]
    fn session_rejects_misuse() {
        let (mut session, _source, anc, edge) = tc_session(&chain(4));
        let t = ThreadedTransport;
        let cfg = RuntimeConfig::default();
        let batch = UpdateBatch {
            inserts: vec![(edge, ituple![4, 5])],
            deletes: vec![],
        };
        assert!(session.apply(&batch, &t, &cfg).is_err(), "apply before initialize");
        session.initialize(&t, &cfg).unwrap();
        assert!(session.initialize(&t, &cfg).is_err(), "double initialize");
        let derived = UpdateBatch {
            inserts: vec![(anc, ituple![0, 1])],
            deletes: vec![],
        };
        assert!(session.apply(&derived, &t, &cfg).is_err(), "derived predicates are not updatable");
    }

    #[test]
    fn update_rounds_match_recompute_under_simulation() {
        for seed in [11, 42, 1999] {
            let (mut session, source, anc, edge) = tc_session(&chain(8));
            let cfg = RuntimeConfig::default();
            session.initialize(&SimTransport::new(seed), &cfg).unwrap();
            assert_differential(&session, &source, anc);
            let batch = UpdateBatch {
                inserts: vec![(edge, ituple![8, 9]), (edge, ituple![9, 2])],
                deletes: vec![(edge, ituple![3, 4])],
            };
            session.apply(&batch, &SimTransport::new(seed ^ 0xa5), &cfg).unwrap();
            assert_differential(&session, &source, anc);
            let batch2 = UpdateBatch {
                inserts: vec![(edge, ituple![3, 4])],
                deletes: vec![(edge, ituple![9, 2]), (edge, ituple![0, 1])],
            };
            session.apply(&batch2, &SimTransport::new(seed ^ 0x5a), &cfg).unwrap();
            assert_differential(&session, &source, anc);
        }
    }

    #[test]
    fn nonlinear_ancestor_survives_update_rounds() {
        let fx = nonlinear_ancestor();
        let edges = random_digraph(12, 24, 7);
        let db = fx.database(&edges);
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 13));
        let choices = vec![
            RuleChoice { v: vec![var(&fx.program, "Y")], h: h.clone() },
            RuleChoice { v: vec![var(&fx.program, "Z")], h },
        ];
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let mut session = UpdateSession::new(&scheme, &fx.program, &db).unwrap();
        let t = ThreadedTransport;
        let cfg = RuntimeConfig::default();
        let (anc, edge) = (fx.output_id(), fx.input_id(0));
        session.initialize(&t, &cfg).unwrap();
        assert_differential(&session, &fx.program, anc);

        // Delete three real edges, then re-insert two of them.
        let victims: Vec<Tuple> = edges.iter().take(3).cloned().collect();
        let cut = UpdateBatch {
            inserts: vec![],
            deletes: victims.iter().map(|v| (edge, v.clone())).collect(),
        };
        let r = session.apply(&cut, &t, &cfg).unwrap();
        assert_eq!(r.deleted_base, 3);
        assert_differential(&session, &fx.program, anc);
        let heal = UpdateBatch {
            inserts: victims.iter().take(2).map(|v| (edge, v.clone())).collect(),
            deletes: vec![],
        };
        session.apply(&heal, &t, &cfg).unwrap();
        assert_differential(&session, &fx.program, anc);
    }

}
