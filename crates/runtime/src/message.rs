//! Wire format between worker threads.

use bytes::Bytes;

use crate::termination::TokenMsg;

/// A message traveling on a channel `i → j`.
#[derive(Debug, Clone)]
pub enum Message {
    /// A serialized batch of derived tuples for the destination's inbox
    /// predicate (see [`crate::codec`]). This is the paper's channel
    /// relation `t_ij`: "addition of tuples to the predicate `t_ij` ...
    /// should be interpreted as processor i sending the tuples to
    /// processor j". Batches travel encoded so communication is measured
    /// in wire bytes.
    Batch(Bytes),
    /// Safra's termination-detection token, traveling the ring.
    Token(TokenMsg),
    /// Global termination announcement (from the ring initiator).
    Terminate,
}

/// A message with its sender, as delivered to a worker's queue.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending processor index.
    pub from: usize,
    /// Payload.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{Color, TokenMsg};
    use gst_common::ituple;

    #[test]
    fn envelope_carries_payloads() {
        let interner = gst_common::Interner::new();
        let pred = (interner.intern("anc_in"), 2);
        let payload = crate::codec::encode_batch(pred, &[ituple![1, 2]]).unwrap();
        let env = Envelope {
            from: 3,
            message: Message::Batch(payload),
        };
        assert_eq!(env.from, 3);
        match env.message {
            Message::Batch(bytes) => {
                let (inbox, tuples) = crate::codec::decode_batch(bytes).unwrap();
                assert_eq!(inbox, pred);
                assert_eq!(tuples, vec![ituple![1, 2]]);
            }
            _ => panic!("wrong variant"),
        }
        let _tok = Envelope {
            from: 0,
            message: Message::Token(TokenMsg {
                color: Color::White,
                count: 0,
            }),
        };
        let _term = Envelope {
            from: 0,
            message: Message::Terminate,
        };
    }
}
