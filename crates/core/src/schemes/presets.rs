//! Ready-made §4 algorithms: the three parallel transitive-closure
//! evaluations the paper derives from one framework by varying the
//! discriminating sequence.
//!
//! | Preset | Paper | `v(r)` | communication | base relation |
//! |---|---|---|---|---|
//! | [`example1_wolfson`] | Ex. 1, ref \[19\] | `⟨Y⟩` (cycle) | none | shared |
//! | [`example2_valduriez`] | Ex. 2, ref \[16\] | `⟨X,Z⟩` (fragment) | broadcast | any fragmentation |
//! | [`example3_hash_partition`] | Ex. 3, new | `⟨Z⟩` | point-to-point | disjoint hash fragments |
//!
//! Each preset works for any linear sirup in *transitive-closure shape*:
//! `t(X,Y) :- b(X,Z), t(Z,Y)` with exit `t(X,Y) :- s(X,Y)` — positions
//! may differ; the shape requirements are validated per preset.

use std::sync::Arc;

use gst_common::{Error, Result};
use gst_frontend::ast::Term;
use gst_frontend::{LinearSirup, Variable};
use gst_storage::{Database, Fragmentation};

use crate::dataflow::zero_comm_choice;
use crate::discriminator::{DiscriminatorRef, FragmentOwner, HashMod, SymmetricHashMod};
use crate::schemes::common::BaseDistribution;
use crate::schemes::nonredundant::{rewrite_non_redundant, NonRedundantConfig};
use crate::schemes::CompiledScheme;

/// Example 1 — the Wolfson–Silberschatz algorithm \[19\]: discriminate on a
/// dataflow-graph cycle, so no tuple ever changes processors. Works for
/// any sirup whose dataflow graph has a cycle (Theorem 3); the base
/// relations are shared.
pub fn example1_wolfson(sirup: &LinearSirup, n: usize, db: &Database) -> Result<CompiledScheme> {
    let choice = zero_comm_choice(sirup)?;
    let h: DiscriminatorRef = Arc::new(SymmetricHashMod::new(n, 0xE1));
    let cfg = NonRedundantConfig {
        v_r: choice.v_r,
        v_e: choice.v_e,
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 1 (Wolfson–Silberschatz, zero communication)";
    Ok(scheme)
}

/// Example 2 — the Valduriez–Khoshafian algorithm \[16\]: an *arbitrary*
/// horizontal fragmentation of the base relation; `h(t) = owner fragment`.
/// The ownership test is not evaluable remotely, so every processor
/// broadcasts its new tuples — correct and non-redundant, at maximal
/// communication.
///
/// Requires the recursive rule's base atoms and the exit body to be a
/// single atom over the fragmented predicate (the TC shape).
pub fn example2_valduriez(
    sirup: &LinearSirup,
    fragmentation: Fragmentation,
    db: &Database,
) -> Result<CompiledScheme> {
    if sirup.base_atoms.len() != 1 {
        return Err(Error::Shape(
            "Example 2 needs exactly one base atom in the recursive rule".into(),
        ));
    }
    let pivot = &sirup.base_atoms[0];
    if pivot.pred() != sirup.source {
        return Err(Error::Shape(
            "Example 2 needs the exit rule's base predicate to match the \
             recursive rule's base atom (both read the fragmented relation)"
                .into(),
        ));
    }
    let v_r = vars_of(&pivot.terms, "the recursive base atom")?;
    let exit_atom = sirup
        .exit_rule()
        .body_atoms()
        .next()
        .expect("canonical exit rule");
    let v_e = vars_of(&exit_atom.terms, "the exit body atom")?;
    let h: DiscriminatorRef = Arc::new(FragmentOwner::new(Arc::new(fragmentation)));
    let cfg = NonRedundantConfig {
        v_r,
        v_e,
        h: h.clone(),
        h_prime: h,
        // FragmentOwner constraints carve out exactly each worker's
        // fragment — the paper's `par^i`.
        base: BaseDistribution::MinimalFragments,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 2 (Valduriez–Khoshafian, fragmented + broadcast)";
    Ok(scheme)
}

/// Example 3 — the paper's new algorithm: hash-discriminate on the
/// variable `Ȳ` and the exit head share at a dataflow position, giving
/// point-to-point communication over disjoint base fragments — strictly
/// between Examples 1 and 2 on both axes.
///
/// The position picked is the first position `p` such that `Ȳ_p` is a
/// variable occurring in some base atom of the recursive rule (ancestor:
/// `p = 0`, `v(r) = ⟨Z⟩`, `v(e) = ⟨X⟩`).
pub fn example3_hash_partition(
    sirup: &LinearSirup,
    n: usize,
    db: &Database,
) -> Result<CompiledScheme> {
    let base_vars: Vec<Variable> = sirup
        .base_atoms
        .iter()
        .flat_map(|a| a.variables().collect::<Vec<_>>())
        .collect();
    let mut picked = None;
    for (p, term) in sirup.recursive_args.iter().enumerate() {
        if let Term::Var(v) = term {
            if base_vars.contains(v) {
                if let Some(Term::Var(e)) = sirup.exit_head.get(p) {
                    picked = Some((p, *v, *e));
                    break;
                }
            }
        }
    }
    let Some((_p, v_r_var, v_e_var)) = picked else {
        return Err(Error::Shape(
            "Example 3 needs a recursive-atom position whose variable occurs in a \
             base atom and whose exit-head position is a variable"
                .into(),
        ));
    };
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 0xE3));
    let cfg = NonRedundantConfig {
        v_r: vec![v_r_var],
        v_e: vec![v_e_var],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::MinimalFragments,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 3 (hash partition, point-to-point)";
    Ok(scheme)
}

fn vars_of(terms: &[Term], what: &str) -> Result<Vec<Variable>> {
    let vars: Vec<Variable> = terms.iter().filter_map(Term::as_var).collect();
    if vars.len() != terms.len() {
        return Err(Error::Shape(format!(
            "Example preset requires {what} to have only variables"
        )));
    }
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_eval::seminaive_eval;
    use gst_storage::round_robin_fragment;
    use gst_workloads::{chain, grid, linear_ancestor, random_digraph};

    fn setup() -> (LinearSirup, gst_workloads::Fixture) {
        let fx = linear_ancestor();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        (s, fx)
    }

    #[test]
    fn example1_no_communication_and_correct() {
        let (s, fx) = setup();
        let db = fx.database(&random_digraph(25, 55, 8));
        let scheme = example1_wolfson(&s, 4, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        // The paper's headline property: zero recursive communication.
        assert!(outcome.stats.communication_free());
        // And non-redundant (Theorem 2).
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn example1_base_relation_is_shared() {
        let (s, fx) = setup();
        let db = fx.database(&chain(10));
        let scheme = example1_wolfson(&s, 3, &db).unwrap();
        let par = fx.input_id(0);
        for w in &scheme.workers {
            assert_eq!(w.edb.relation(par).unwrap().len(), 10, "full copy");
        }
    }

    #[test]
    fn example2_arbitrary_fragmentation_and_broadcast() {
        let (s, fx) = setup();
        let edges = random_digraph(20, 45, 3);
        let db = fx.database(&edges);
        // Round-robin is the adversarial "any horizontal fragmentation".
        let frag = round_robin_fragment(&edges, 4).unwrap();
        let scheme = example2_valduriez(&s, frag, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        // Broadcast: every derived tuple crosses every channel, so the
        // channel matrix is (almost) complete.
        let used = outcome.stats.used_channels();
        assert!(
            used.len() >= 9,
            "broadcast should light up most of the 12 channels: {used:?}"
        );
        // Still non-redundant (paper: "the extra communication does not
        // make the parallel execution either incorrect or redundant").
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn example2_workers_hold_their_fragment_only() {
        let (s, fx) = setup();
        let edges = chain(20);
        let db = fx.database(&edges);
        let frag = round_robin_fragment(&edges, 4).unwrap();
        let sizes = frag.sizes();
        let scheme = example2_valduriez(&s, frag, &db).unwrap();
        let par = fx.input_id(0);
        for (i, w) in scheme.workers.iter().enumerate() {
            assert_eq!(
                w.edb.relation(par).map(|r| r.len()).unwrap_or(0),
                sizes[i],
                "worker {i} holds exactly fragment {i}"
            );
        }
    }

    #[test]
    fn example3_point_to_point_and_correct() {
        let (s, fx) = setup();
        let db = fx.database(&grid(5, 5));
        let scheme = example3_hash_partition(&s, 4, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn the_three_examples_order_by_communication() {
        // Paper §4.3: Example 1 < Example 3 < Example 2 in communication.
        let (s, fx) = setup();
        let edges = random_digraph(24, 60, 12);
        let db = fx.database(&edges);
        let n = 4;

        let c1 = example1_wolfson(&s, n, &db).unwrap().run().unwrap();
        let c3 = example3_hash_partition(&s, n, &db).unwrap().run().unwrap();
        let frag = round_robin_fragment(&edges, n).unwrap();
        let c2 = example2_valduriez(&s, frag, &db).unwrap().run().unwrap();

        let (t1, t3, t2) = (
            c1.stats.total_tuples_sent(),
            c3.stats.total_tuples_sent(),
            c2.stats.total_tuples_sent(),
        );
        assert_eq!(t1, 0, "Example 1 is communication-free");
        assert!(t3 > 0, "Example 3 communicates point-to-point");
        assert!(
            t2 > t3,
            "Example 2 broadcasts more than Example 3 routes: {t2} vs {t3}"
        );
    }

    #[test]
    fn example3_fragments_are_smaller_than_replication() {
        let (s, fx) = setup();
        let edges = chain(40);
        let db = fx.database(&edges);
        let n = 4;
        let scheme = example3_hash_partition(&s, n, &db).unwrap();
        let par = fx.input_id(0);
        let total: usize = scheme
            .workers
            .iter()
            .map(|w| w.edb.relation(par).map(|r| r.len()).unwrap_or(0))
            .sum();
        assert!(
            total <= 2 * edges.len(),
            "X- and Z-fragments: ≤ 2·|par| total, got {total}"
        );
        assert!(total < n * edges.len(), "strictly better than replication");
    }

    #[test]
    fn example2_rejects_wrong_shape() {
        let fx = gst_workloads::same_generation();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        let (up, down, flat) = gst_workloads::same_generation_tree(3);
        let db = fx.database_multi(&[up.clone(), down, flat]);
        let frag = round_robin_fragment(&up, 2).unwrap();
        assert!(example2_valduriez(&s, frag, &db).is_err());
    }

    #[test]
    fn example1_rejects_acyclic_dataflow() {
        let fx = gst_workloads::chain_sirup();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        let db = Database::new(fx.program.interner.clone());
        assert!(example1_wolfson(&s, 2, &db).is_err());
    }
}
