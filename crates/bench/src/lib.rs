//! Experiment drivers for the reproduction.
//!
//! The 1990 paper is qualitative: its "evaluation" artifacts are Figures
//! 1–4, Examples 1–8 and Theorems 1–6. Every function here regenerates
//! one of those artifacts — or attaches numbers to one of the paper's
//! qualitative claims — and returns a structured result that the
//! `harness` binary renders as text and the test suite asserts on.
//! Micro-benches in `benches/` time the underlying executions with the
//! dependency-free harness in [`micro`].

#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod micro;
pub mod table;
pub mod tracecheck;

pub use experiments::*;
