//! A minimal JSON emitter for harness reports.
//!
//! The experiment results are small, fixed-shape records; a dependency-free
//! writer keeps the workspace inside its approved crate set while still
//! producing machine-readable artifacts (`harness --json out.json`) that a
//! CI job can diff against a golden file.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered via `f64`; integers stay integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32))
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shorthand for numeric fields.
pub fn num<T: Into<f64>>(x: T) -> Json {
    Json::Num(x.into())
}

/// Shorthand for `u64` counters (lossless for the sizes we emit).
pub fn count(x: u64) -> Json {
    Json::Num(x as f64)
}

/// Shorthand for string fields.
pub fn s(x: impl Into<String>) -> Json {
    Json::Str(x.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(num(42.0).render(), "42");
        assert_eq!(num(2.5).render(), "2.5");
        assert_eq!(count(1234567).render(), "1234567");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(s("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(s("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_structures() {
        let j = Json::obj(vec![
            ("name", s("t2")),
            ("rows", Json::Arr(vec![count(1), count(2)])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(j.render(), r#"{"name":"t2","rows":[1,2],"ok":true}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }
}
