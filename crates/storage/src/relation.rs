//! A relation: a duplicate-free, insertion-ordered arena of same-arity
//! tuples.
//!
//! Tuples are stored exactly once, in arrival order, in a row arena
//! (`Vec<Tuple>`); a compact open-addressed table of `(hash, row-id)`
//! slots provides set semantics without a second copy of any tuple.
//! Row ids are dense `u32`s, so secondary structures (hash indexes,
//! delta windows) can reference tuples by id instead of cloning them,
//! and a contiguous row range — e.g. "everything inserted since row
//! `k`" — is a borrowable `&[Tuple]` slice that the runtime can encode
//! onto the wire without an intermediate buffer.
//!
//! Deletion is by **tombstone**: [`Relation::delete`] removes the tuple
//! from the dedup table (so a later insert of the same tuple lands in a
//! *fresh* arena row, i.e. gets a fresh generation) and marks the old
//! row dead in a side bitmap. The arena never compacts, so row ids,
//! delta watermarks, and index `built_at` stamps all stay valid; readers
//! that enumerate rows ([`Relation::iter`], scans, index postings) skip
//! dead rows via [`Relation::is_live`]. `len()`/`generation()` remain
//! the *arena* row count — callers that want the set cardinality use
//! [`Relation::live_len`].

use gst_common::{fxhash::hash_one, Error, Interner, Result, Tuple};

/// Sentinel marking a vacant dedup slot; real row ids stay below it.
const VACANT: u32 = u32::MAX;

/// One slot of the dedup table: a folded 32-bit hash plus the row id.
///
/// Eight bytes per slot — half a `(u64, u32)` layout — doubles the
/// slots per cache line, and dedup probes are memory-latency bound.
/// The bucket position is derived from the *stored* fold, so growth
/// stays rehash-free; a fold collision between distinct tuples merely
/// costs one extra `eq` call (~2⁻³² per probe step).
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u32,
    row: u32,
}

/// Fold a 64-bit hash to the 32 bits the table keys on.
#[inline]
fn fold(hash: u64) -> u32 {
    (hash >> 32) as u32 ^ hash as u32
}

/// Open-addressed `(hash, row)` set with linear probing.
///
/// The table never looks at tuples itself: callers supply an equality
/// closure over row ids, which keeps the arena and the table in
/// separate fields that the borrow checker can split.
#[derive(Debug, Clone, Default)]
struct RowTable {
    slots: Box<[Slot]>,
    len: usize,
}

impl RowTable {
    fn with_capacity(rows: usize) -> Self {
        let mut t = RowTable::default();
        if rows > 0 {
            t.grow_to(slots_for(rows));
        }
        t
    }

    /// Find the row whose hash matches and for which `eq` holds.
    fn find(&self, hash: u32, eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        self.probe(hash, eq).ok()
    }

    /// Walk the probe chain once: `Ok(row)` when the tuple is present,
    /// `Err(slot)` of the vacant slot ending the chain otherwise — the
    /// insert position, valid until the next growth.
    fn probe(&self, hash: u32, mut eq: impl FnMut(u32) -> bool) -> std::result::Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.row == VACANT {
                return Err(i);
            }
            if s.hash == hash && eq(s.row) {
                return Ok(s.row);
            }
            i = (i + 1) & mask;
        }
    }

    /// Grow if another insert would push the load factor past 5/8 —
    /// linear probing degrades sharply above that (the probe chain for a
    /// *miss*, the common case on dedup-heavy workloads, scales with
    /// `1/(1-α)²`).
    fn reserve_one(&mut self) {
        if self.len * 8 >= self.slots.len() * 5 {
            self.grow_to((self.slots.len() * 2).max(16));
        }
    }

    /// Pull the bucket line for `hash` into cache. Batch inserts call
    /// this a few tuples ahead of the probe so the (almost always
    /// out-of-cache) slot loads overlap instead of serializing — dedup
    /// is memory-latency bound, not compute bound. `black_box` keeps the
    /// otherwise-dead load from being optimized away.
    #[inline]
    fn touch(&self, hash: u32) {
        if !self.slots.is_empty() {
            let i = (hash as usize) & (self.slots.len() - 1);
            std::hint::black_box(self.slots[i].row);
        }
    }

    /// Remove the entry whose hash matches and for which `eq` holds,
    /// returning its row id. Uses backward-shift deletion: the probe
    /// chain after the removed slot is compacted in place (each entry
    /// moves back iff the hole lies on its probe path), so no tombstone
    /// markers accumulate in the table and probe chains never lengthen
    /// from deletions. Home buckets are recomputed from the *stored*
    /// folds, so no tuple is hashed or touched.
    fn remove(&mut self, hash: u32, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut hole = {
            let mut i = (hash as usize) & mask;
            loop {
                let s = self.slots[i];
                if s.row == VACANT {
                    return None;
                }
                if s.hash == hash && eq(s.row) {
                    break i;
                }
                i = (i + 1) & mask;
            }
        };
        let removed = self.slots[hole].row;
        let mut j = (hole + 1) & mask;
        loop {
            let s = self.slots[j];
            if s.row == VACANT {
                break;
            }
            // `s` may fill the hole iff the hole lies cyclically within
            // [home, j) — i.e. vacating slot j does not strand `s` past
            // a gap in its own probe chain.
            let home = (s.hash as usize) & mask;
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = s;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.slots[hole] = Slot { hash: 0, row: VACANT };
        self.len -= 1;
        Some(removed)
    }

    /// Fill a vacant slot returned by [`RowTable::probe`].
    fn occupy(&mut self, slot: usize, hash: u32, row: u32) {
        debug_assert_eq!(self.slots[slot].row, VACANT);
        self.slots[slot] = Slot { hash, row };
        self.len += 1;
    }

    /// Grow so that `rows` entries fit under the load-factor ceiling
    /// without any further growth — callers that insert a whole batch
    /// hoist the capacity check out of the per-tuple loop this way.
    fn reserve_rows(&mut self, rows: usize) {
        let needed = slots_for(rows);
        if needed > self.slots.len() {
            self.grow_to(needed);
        }
    }

    /// Resize to `cap` slots (a power of two), repositioning entries by
    /// their stored hashes — no tuple access needed.
    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap > self.slots.len());
        let old = std::mem::replace(
            &mut self.slots,
            vec![Slot { hash: 0, row: VACANT }; cap].into_boxed_slice(),
        );
        let mask = cap - 1;
        for s in old.iter().filter(|s| s.row != VACANT) {
            let mut i = (s.hash as usize) & mask;
            while self.slots[i].row != VACANT {
                i = (i + 1) & mask;
            }
            self.slots[i] = *s;
        }
    }
}

/// Slot count (power of two) comfortably holding `rows` entries under
/// the 5/8 load factor.
fn slots_for(rows: usize) -> usize {
    (rows * 8 / 5 + 1).next_power_of_two().max(16)
}

/// A set of tuples of a fixed arity, stored once in insertion order.
///
/// Inserts are idempotent (set semantics) and report whether the tuple
/// was new — the signal semi-naive evaluation and duplicate-elimination
/// on receive (paper §3, step 4) are built on. Because rows only append,
/// the row count doubles as a monotone `generation` stamp that index
/// caches use both to detect staleness and to know exactly which row
/// range they still have to ingest.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    table: RowTable,
    /// Tombstone bitmap over arena rows: bit set ⇒ row is dead. Bits
    /// past the vector's end are implicitly live, so appends never have
    /// to grow it — the (overwhelmingly common) delete-free relation
    /// carries an empty `Vec` and pays nothing.
    dead: Vec<u64>,
    /// Number of set bits in `dead` (so `live_len` is O(1)).
    dead_count: usize,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            table: RowTable::default(),
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// Create an empty relation with room for `capacity` tuples.
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::with_capacity(capacity),
            table: RowTable::with_capacity(capacity),
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// The arity every tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of **arena rows**, dead rows included. This is the bound
    /// for row ids, delta watermarks and index ranges; use
    /// [`Relation::live_len`] for the set cardinality.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of live tuples (arena rows minus tombstones).
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.dead_count
    }

    /// Number of tombstoned rows.
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// True when the relation holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// True unless `row` has been tombstoned by [`Relation::delete`].
    /// Rows past the bitmap's end are live by construction.
    #[inline]
    pub fn is_live(&self, row: u32) -> bool {
        match self.dead.get(row as usize / 64) {
            Some(word) => word & (1u64 << (row % 64)) == 0,
            None => true,
        }
    }

    /// Monotone stamp bumped on every successful insert.
    ///
    /// Equal to the row count: rows are append-only, so "how many rows"
    /// and "how often did this change" are the same number, and an index
    /// stamped `built_at = g` knows rows `g..` are the ones it missed.
    ///
    /// Tombstoning a row does **not** bump the generation — the arena is
    /// unchanged. A reader that caches row ids across deletions must
    /// re-check [`Relation::is_live`] (the plan executor does); within
    /// one evaluation run no deletions occur, so fixpoint hot paths
    /// never pay that check's slow path.
    pub fn generation(&self) -> u64 {
        self.rows.len() as u64
    }

    /// The row arena in insertion order. Row ids index into this slice.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The tuple stored at `row`.
    pub fn row(&self, row: u32) -> &Tuple {
        &self.rows[row as usize]
    }

    /// Insert a tuple; returns `true` if it was not already present.
    ///
    /// # Errors
    /// Arity mismatches are storage errors, not panics: they indicate a
    /// malformed program or corrupted channel message.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.arity {
            return Err(Error::Storage(format!(
                "arity mismatch: relation has arity {}, tuple has {}",
                self.arity,
                tuple.arity()
            )));
        }
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without arity checking; used on hot paths where the caller
    /// constructed the tuple against this relation's schema.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.arity);
        let hash = fold(hash_one(&tuple));
        // Grow *before* probing so the vacant slot the probe lands on is
        // still the right insert position afterwards.
        self.table.reserve_one();
        let rows = &self.rows;
        match self.table.probe(hash, |r| rows[r as usize] == tuple) {
            Ok(_) => false,
            Err(slot) => {
                let row = self.rows.len() as u32;
                debug_assert!(row < VACANT, "relation exceeds u32 row-id space");
                self.rows.push(tuple);
                self.table.occupy(slot, hash, row);
                true
            }
        }
    }

    /// Drain `pending` into the relation, returning how many tuples were
    /// new. Semantically `for t in pending.drain(..) { insert_unchecked(t) }`,
    /// but organized for the dedup-heavy bulk case that semi-naive
    /// `advance` hits every round: hashes are computed in one sequential
    /// pass, the table grows at most once up front (so bucket positions
    /// are stable for the whole batch), and each probe's bucket line is
    /// prefetched a few tuples ahead, overlapping the cache misses that
    /// dominate per-insert cost.
    pub fn insert_batch(&mut self, pending: &mut Vec<Tuple>) -> u64 {
        const LOOKAHEAD: usize = 8;
        if pending.is_empty() {
            return 0;
        }
        let before = self.rows.len();
        self.table.reserve_rows(before + pending.len());
        let mut hashes: Vec<u32> = Vec::with_capacity(pending.len());
        hashes.extend(pending.iter().map(|t| fold(hash_one(t))));
        for (i, t) in pending.drain(..).enumerate() {
            debug_assert_eq!(t.arity(), self.arity);
            if let Some(&ahead) = hashes.get(i + LOOKAHEAD) {
                self.table.touch(ahead);
            }
            let hash = hashes[i];
            let rows = &self.rows;
            if let Err(slot) = self.table.probe(hash, |r| rows[r as usize] == t) {
                let row = self.rows.len() as u32;
                debug_assert!(row < VACANT, "relation exceeds u32 row-id space");
                self.rows.push(t);
                self.table.occupy(slot, hash, row);
            }
        }
        (self.rows.len() - before) as u64
    }

    /// Tombstone a tuple: remove it from the dedup table and mark its
    /// arena row dead. Returns `true` if the tuple was live. The arena
    /// is untouched — row ids and the generation stamp are unaffected —
    /// but the tuple no longer satisfies [`Relation::contains`], is
    /// skipped by [`Relation::iter`] and scans, and a subsequent insert
    /// of the same tuple appends a **fresh** arena row (fresh
    /// generation), which is what lets delta watermarks treat a
    /// re-inserted tuple as new.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        if tuple.arity() != self.arity {
            return false;
        }
        let rows = &self.rows;
        let hash = fold(hash_one(tuple));
        match self.table.remove(hash, |r| &rows[r as usize] == tuple) {
            Some(row) => {
                let word = row as usize / 64;
                if word >= self.dead.len() {
                    self.dead.resize(word + 1, 0);
                }
                debug_assert_eq!(self.dead[word] & (1u64 << (row % 64)), 0);
                self.dead[word] |= 1u64 << (row % 64);
                self.dead_count += 1;
                true
            }
            None => false,
        }
    }

    /// Membership test (dead rows are absent: deletion removed their
    /// table entry).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        let rows = &self.rows;
        self.table
            .find(fold(hash_one(tuple)), |r| &rows[r as usize] == tuple)
            .is_some()
    }

    /// Iterate over the live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(row, _)| self.dead_count == 0 || self.is_live(*row as u32))
            .map(|(_, t)| t)
    }

    /// All live tuples, sorted — deterministic order for tests and
    /// reports.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = if self.dead_count == 0 {
            self.rows.clone()
        } else {
            self.iter().cloned().collect()
        };
        v.sort();
        v
    }

    /// Set-equality against another relation (insertion order and dead
    /// rows ignored).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.live_len() == other.live_len()
            && self.iter().all(|t| other.contains(t))
    }

    /// Absorb all tuples of `other`; returns how many were new.
    pub fn absorb(&mut self, other: &Relation) -> Result<usize> {
        if other.arity != self.arity {
            return Err(Error::Storage(format!(
                "arity mismatch in union: {} vs {}",
                self.arity, other.arity
            )));
        }
        let mut added = 0;
        for t in other.iter() {
            if self.insert_unchecked(t.clone()) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Absorb all tuples of `other`, consuming it; returns how many were
    /// new. The moved-from arena feeds [`Relation::insert_batch`], so
    /// final pooling of worker results pays no per-tuple clone and gets
    /// the pipelined dedup probe.
    ///
    /// # Errors
    /// Arity mismatch, as for [`Relation::absorb`].
    pub fn absorb_owned(&mut self, other: Relation) -> Result<usize> {
        if other.arity != self.arity {
            return Err(Error::Storage(format!(
                "arity mismatch in union: {} vs {}",
                self.arity, other.arity
            )));
        }
        let mut rows = if other.dead_count == 0 {
            other.rows
        } else {
            // Dead rows must not be resurrected by the union.
            let dead = &other.dead;
            other
                .rows
                .into_iter()
                .enumerate()
                .filter(|(row, _)| {
                    dead.get(row / 64)
                        .is_none_or(|w| w & (1u64 << (row % 64)) == 0)
                })
                .map(|(_, t)| t)
                .collect()
        };
        Ok(self.insert_batch(&mut rows) as usize)
    }

    /// Render the relation as sorted, one-tuple-per-line text.
    pub fn display(&self, interner: &Interner) -> String {
        self.sorted()
            .iter()
            .map(|t| t.display(interner))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first
    /// tuple (or 0 when empty) and later mismatches panic — use
    /// [`Relation::insert`] when the input is untrusted.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.arity()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for t in it {
            assert_eq!(t.arity(), arity, "mixed arity in FromIterator<Tuple>");
            rel.insert_unchecked(t);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    #[test]
    fn insert_reports_freshness() {
        let mut r = Relation::new(2);
        assert!(r.insert(ituple![1, 2]).unwrap());
        assert!(!r.insert(ituple![1, 2]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut r = Relation::new(2);
        assert!(r.insert(ituple![1]).is_err());
        assert!(r.insert(ituple![1, 2, 3]).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn generation_bumps_only_on_fresh_insert() {
        let mut r = Relation::new(1);
        assert_eq!(r.generation(), 0);
        r.insert(ituple![1]).unwrap();
        assert_eq!(r.generation(), 1);
        r.insert(ituple![1]).unwrap();
        assert_eq!(r.generation(), 1);
        r.insert(ituple![2]).unwrap();
        assert_eq!(r.generation(), 2);
    }

    #[test]
    fn rows_preserve_insertion_order() {
        let mut r = Relation::new(2);
        for (a, b) in [(3, 1), (1, 2), (3, 1), (2, 9)] {
            r.insert(ituple![a, b]).unwrap();
        }
        assert_eq!(r.rows(), &[ituple![3, 1], ituple![1, 2], ituple![2, 9]]);
        assert_eq!(r.row(1), &ituple![1, 2]);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(2);
        for (a, b) in [(3, 1), (1, 2), (2, 9), (1, 1)] {
            r.insert(ituple![a, b]).unwrap();
        }
        assert_eq!(
            r.sorted(),
            vec![ituple![1, 1], ituple![1, 2], ituple![2, 9], ituple![3, 1]]
        );
    }

    #[test]
    fn set_eq_ignores_insertion_order() {
        let a: Relation = [ituple![1, 2], ituple![3, 4]].into_iter().collect();
        let b: Relation = [ituple![3, 4], ituple![1, 2]].into_iter().collect();
        assert!(a.set_eq(&b));
        let c: Relation = [ituple![1, 2]].into_iter().collect();
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn absorb_unions_and_counts() {
        let mut a: Relation = [ituple![1, 2], ituple![3, 4]].into_iter().collect();
        let b: Relation = [ituple![3, 4], ituple![5, 6]].into_iter().collect();
        assert_eq!(a.absorb(&b).unwrap(), 1);
        assert_eq!(a.len(), 3);
        let wrong = Relation::new(1);
        assert!(wrong.arity() == 1 && a.absorb(&wrong).is_err());
    }

    #[test]
    fn display_renders_sorted_lines() {
        let interner = Interner::new();
        let r: Relation = [ituple![2, 1], ituple![1, 1]].into_iter().collect();
        assert_eq!(r.display(&interner), "(1, 1)\n(2, 1)");
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut r = Relation::with_capacity(2, 100);
        assert_eq!(r.arity(), 2);
        r.insert(ituple![1, 2]).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dedup_survives_table_growth() {
        let mut r = Relation::new(1);
        for i in 0..10_000 {
            assert!(r.insert(ituple![i]).unwrap());
        }
        for i in 0..10_000 {
            assert!(!r.insert(ituple![i]).unwrap());
            assert!(r.contains(&ituple![i]));
        }
        assert!(!r.contains(&ituple![10_000]));
        assert_eq!(r.len(), 10_000);
    }

    #[test]
    fn delete_tombstones_without_moving_rows() {
        let mut r = Relation::new(2);
        r.insert(ituple![1, 2]).unwrap();
        r.insert(ituple![3, 4]).unwrap();
        r.insert(ituple![5, 6]).unwrap();
        assert!(r.delete(&ituple![3, 4]));
        assert!(!r.delete(&ituple![3, 4]), "second delete is a no-op");
        assert!(!r.delete(&ituple![9, 9]), "absent tuple");
        assert!(!r.delete(&ituple![1]), "wrong arity");
        // Arena untouched; liveness and set views updated.
        assert_eq!(r.len(), 3);
        assert_eq!(r.live_len(), 2);
        assert_eq!(r.dead_count(), 1);
        assert_eq!(r.generation(), 3);
        assert!(r.is_live(0) && !r.is_live(1) && r.is_live(2));
        assert!(!r.contains(&ituple![3, 4]));
        assert_eq!(r.row(1), &ituple![3, 4], "dead row still addressable");
        assert_eq!(r.sorted(), vec![ituple![1, 2], ituple![5, 6]]);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn reinsert_after_delete_gets_fresh_row() {
        let mut r = Relation::new(1);
        r.insert(ituple![7]).unwrap();
        assert!(r.delete(&ituple![7]));
        let g = r.generation();
        assert!(r.insert(ituple![7]).unwrap(), "re-insert is fresh");
        assert_eq!(r.generation(), g + 1, "fresh arena row, fresh generation");
        assert!(r.is_live(1) && !r.is_live(0));
        assert_eq!(r.live_len(), 1);
        // The delta suffix above the old generation holds exactly the
        // re-inserted tuple — a downstream watermark at `g` ships it.
        assert_eq!(&r.rows()[g as usize..], &[ituple![7]]);
    }

    #[test]
    fn set_eq_and_is_empty_ignore_dead_rows() {
        let mut a = Relation::new(1);
        a.insert(ituple![1]).unwrap();
        a.insert(ituple![2]).unwrap();
        a.delete(&ituple![2]);
        let b: Relation = [ituple![1]].into_iter().collect();
        assert!(a.set_eq(&b) && b.set_eq(&a));
        a.delete(&ituple![1]);
        assert!(a.is_empty());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn absorb_owned_skips_dead_rows() {
        let mut src = Relation::new(1);
        src.insert(ituple![1]).unwrap();
        src.insert(ituple![2]).unwrap();
        src.insert(ituple![3]).unwrap();
        src.delete(&ituple![2]);
        let mut dst = Relation::new(1);
        assert_eq!(dst.absorb_owned(src).unwrap(), 2);
        assert_eq!(dst.sorted(), vec![ituple![1], ituple![3]]);

        let mut src2 = Relation::new(1);
        src2.insert(ituple![4]).unwrap();
        src2.delete(&ituple![4]);
        let mut dst2 = Relation::new(1);
        dst2.insert(ituple![4]).unwrap();
        assert_eq!(dst2.absorb_owned(src2).unwrap(), 0);
        assert!(dst2.contains(&ituple![4]), "dead source row cannot delete");
    }

    /// Tiny deterministic PRNG (xorshift64*) so the property tests below
    /// are seeded and reproducible without external crates.
    fn rng(seed: u64) -> impl FnMut(u64) -> u64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move |bound| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % bound
        }
    }

    /// Property: under any interleaving of insert / delete / re-insert,
    /// the relation behaves exactly like a `BTreeSet` oracle, every
    /// re-inserted tuple lands above the pre-insert watermark, the dedup
    /// table never resurrects a dead row, and the arena suffix above any
    /// watermark contains only rows appended after it (the delta-shipping
    /// invariant: dead rows are always *below* a watermark taken at
    /// delete time, so they can never enter a ship range).
    #[test]
    fn tombstone_arena_matches_set_oracle_under_random_interleaving() {
        use std::collections::BTreeSet;
        for seed in 0..40u64 {
            let mut next = rng(seed + 1);
            let mut r = Relation::new(2);
            let mut oracle: BTreeSet<Tuple> = BTreeSet::new();
            for _step in 0..400 {
                let a = next(12) as i64;
                let b = next(12) as i64;
                let t = ituple![a, b];
                match next(3) {
                    0 | 1 => {
                        let watermark = r.len();
                        let fresh = r.insert(t.clone()).unwrap();
                        assert_eq!(fresh, oracle.insert(t.clone()), "seed {seed}");
                        if fresh {
                            // Fresh tuples (first inserts AND re-inserts)
                            // appear in the arena suffix above the
                            // pre-insert watermark.
                            assert!(r.rows()[watermark..].contains(&t), "seed {seed}");
                            assert!(r.is_live((r.len() - 1) as u32));
                        } else {
                            assert_eq!(r.len(), watermark, "dup must not append");
                        }
                    }
                    _ => {
                        assert_eq!(r.delete(&t), oracle.remove(&t), "seed {seed}");
                        assert!(!r.contains(&t));
                    }
                }
                assert_eq!(r.live_len(), oracle.len(), "seed {seed}");
                assert_eq!(r.len(), r.live_len() + r.dead_count(), "seed {seed}");
            }
            // Final views agree with the oracle.
            let expect: Vec<Tuple> = oracle.iter().cloned().collect();
            assert_eq!(r.sorted(), expect, "seed {seed}");
            for t in &expect {
                assert!(r.contains(t), "seed {seed}");
            }
            // Every live row is in the table exactly once (via contains),
            // every dead row is absent, and liveness partitions the arena.
            let live_rows = (0..r.len() as u32).filter(|&row| r.is_live(row)).count();
            assert_eq!(live_rows, r.live_len(), "seed {seed}");
        }
    }

    /// Property: posting lists built over a tombstoned arena contain
    /// only live rows, and dedup probing stays correct after heavy
    /// backward-shift churn concentrated in few buckets (stress for the
    /// chain-compaction path in `RowTable::remove`).
    #[test]
    fn dedup_table_survives_backward_shift_churn() {
        for seed in 0..10u64 {
            let mut next = rng(seed ^ 0xDEAD);
            let mut r = Relation::new(1);
            // Load up, then delete-and-reinsert in waves so probe chains
            // repeatedly form, break, and compact.
            for i in 0..512i64 {
                r.insert(ituple![i]).unwrap();
            }
            for _wave in 0..6 {
                for _ in 0..200 {
                    let v = next(512) as i64;
                    r.delete(&ituple![v]);
                }
                for _ in 0..200 {
                    let v = next(512) as i64;
                    r.insert(ituple![v]).unwrap();
                }
                // The table and the bitmap must agree exactly.
                for v in 0..512i64 {
                    let t = ituple![v];
                    let live_somewhere = (0..r.len() as u32)
                        .any(|row| r.is_live(row) && r.row(row) == &t);
                    assert_eq!(r.contains(&t), live_somewhere, "seed {seed} v {v}");
                }
            }
        }
    }
}
