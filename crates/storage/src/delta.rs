//! Delta relations for semi-naive evaluation.
//!
//! Semi-naive evaluation (paper §2, citing Bancilhon/Ullman) fires each
//! recursive rule only against the tuples discovered in the previous
//! round. A [`DeltaRelation`] tracks three tuple populations:
//!
//! * `all` — every tuple discovered so far (`full ∪ delta`);
//! * `delta` — the tuples that became known in the *previous* round, the
//!   ones rules join against this round;
//! * `pending` — tuples produced (or received from other processors)
//!   during the *current* round.
//!
//! Because [`Relation`] is an insertion-ordered row arena, the delta is
//! not a second relation: it is the row range `all.rows()[delta_start..]`
//! — the suffix appended by the last [`DeltaRelation::advance`]. Ending a
//! round is `delta_start ← |all|`, then `all ← all ∪ pending` (the set
//! insert performs the paper's "difference operation", §3 step 4); the
//! survivors *are* the new delta, borrowable as a slice with no copy.

use gst_common::{Result, Tuple};

use crate::relation::Relation;

/// A relation under semi-naive iteration.
#[derive(Debug, Clone)]
pub struct DeltaRelation {
    all: Relation,
    /// First arena row of the current delta: `all.rows()[delta_start..]`.
    delta_start: usize,
    pending: Vec<Tuple>,
    /// Total pending submissions, counting duplicates (diagnostics).
    submitted: u64,
}

impl DeltaRelation {
    /// Create an empty delta relation of the given arity.
    pub fn new(arity: usize) -> Self {
        DeltaRelation {
            all: Relation::new(arity),
            delta_start: 0,
            pending: Vec::new(),
            submitted: 0,
        }
    }

    /// Seed from an initial relation: all seed tuples form the first delta.
    pub fn seeded(initial: &Relation) -> Self {
        let mut d = DeltaRelation::new(initial.arity());
        for t in initial.iter() {
            d.submit(t.clone());
        }
        d.advance();
        d
    }

    /// The arity of the underlying relation.
    pub fn arity(&self) -> usize {
        self.all.arity()
    }

    /// Everything discovered so far.
    pub fn all(&self) -> &Relation {
        &self.all
    }

    /// The previous round's new tuples — a borrowed arena suffix.
    pub fn delta(&self) -> &[Tuple] {
        &self.all.rows()[self.delta_start..]
    }

    /// Tuples queued for the next round (not yet deduplicated).
    pub fn pending(&self) -> &[Tuple] {
        &self.pending
    }

    /// Queue a tuple produced in the current round.
    pub fn submit(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.arity(), self.arity());
        self.submitted += 1;
        self.pending.push(tuple);
    }

    /// Queue a tuple, checking arity.
    pub fn submit_checked(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(gst_common::Error::Storage(format!(
                "arity mismatch: delta relation has arity {}, tuple has {}",
                self.arity(),
                tuple.arity()
            )));
        }
        self.submit(tuple);
        Ok(())
    }

    /// End the round: deduplicate pending against `all`, making the
    /// survivors the new delta. Returns the number of genuinely new tuples.
    pub fn advance(&mut self) -> usize {
        self.delta_start = self.all.len();
        for t in self.pending.drain(..) {
            self.all.insert_unchecked(t);
        }
        self.all.len() - self.delta_start
    }

    /// True when the last `advance` produced no new tuples and nothing is
    /// pending — the local fixpoint condition.
    pub fn quiescent(&self) -> bool {
        self.delta_start == self.all.len() && self.pending.is_empty()
    }

    /// Total `submit` calls, counting duplicates (diagnostics: measures
    /// derivation effort as opposed to distinct results).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    #[test]
    fn advance_moves_pending_to_delta() {
        let mut d = DeltaRelation::new(2);
        d.submit(ituple![1, 2]);
        d.submit(ituple![3, 4]);
        assert_eq!(d.advance(), 2);
        assert_eq!(d.delta().len(), 2);
        assert_eq!(d.all().len(), 2);
        assert!(d.pending().is_empty());
    }

    #[test]
    fn advance_deduplicates_within_round_and_against_all() {
        let mut d = DeltaRelation::new(1);
        d.submit(ituple![1]);
        d.submit(ituple![1]); // duplicate within the round
        assert_eq!(d.advance(), 1);
        d.submit(ituple![1]); // duplicate against `all`
        d.submit(ituple![2]);
        assert_eq!(d.advance(), 1);
        assert_eq!(d.all().len(), 2);
        assert_eq!(d.submitted(), 4);
    }

    #[test]
    fn delta_is_cleared_each_round() {
        let mut d = DeltaRelation::new(1);
        d.submit(ituple![1]);
        d.advance();
        assert_eq!(d.delta().len(), 1);
        assert_eq!(d.advance(), 0);
        assert!(d.delta().is_empty());
    }

    #[test]
    fn delta_borrows_the_arena_suffix() {
        let mut d = DeltaRelation::new(1);
        d.submit(ituple![1]);
        d.advance();
        d.submit(ituple![2]);
        d.submit(ituple![3]);
        d.advance();
        assert_eq!(d.delta(), &[ituple![2], ituple![3]]);
        assert_eq!(d.all().rows(), &[ituple![1], ituple![2], ituple![3]]);
    }

    #[test]
    fn quiescence() {
        let mut d = DeltaRelation::new(1);
        assert!(d.quiescent());
        d.submit(ituple![1]);
        assert!(!d.quiescent()); // pending
        d.advance();
        assert!(!d.quiescent()); // non-empty delta
        d.advance();
        assert!(d.quiescent());
    }

    #[test]
    fn seeded_starts_with_full_delta() {
        let rel: Relation = [ituple![1, 2], ituple![2, 3]].into_iter().collect();
        let d = DeltaRelation::seeded(&rel);
        assert_eq!(d.delta().len(), 2);
        assert_eq!(d.all().len(), 2);
        assert!(!d.quiescent());
    }

    #[test]
    fn submit_checked_rejects_bad_arity() {
        let mut d = DeltaRelation::new(2);
        assert!(d.submit_checked(ituple![1]).is_err());
        assert!(d.submit_checked(ituple![1, 2]).is_ok());
    }
}
