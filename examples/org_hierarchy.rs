//! A realistic end-user program: an org chart with string constants and
//! comparison built-ins, queried sequentially and in parallel.
//!
//! Shows the full surface language — quoted strings, `!=`/`<`
//! comparisons (which ride the same constraint machinery as the paper's
//! discriminating conditions) — on a management hierarchy:
//! who reports (transitively) to whom, and which pairs are peers under
//! the same boss.
//!
//! ```text
//! cargo run --release --example org_hierarchy
//! ```

use parallel_datalog::prelude::*;

fn main() -> Result<()> {
    let source = r#"
        % reports(Manager, Report)
        reports("Ada Lovelace", "Grace Hopper").
        reports("Ada Lovelace", "Alan Turing").
        reports("Grace Hopper", "Edsger Dijkstra").
        reports("Grace Hopper", "Barbara Liskov").
        reports("Alan Turing", "Tony Hoare").
        reports("Tony Hoare", "Niklaus Wirth").

        % chain(M, R): R is anywhere under M.
        chain(M, R) :- reports(M, R).
        chain(M, R) :- reports(M, X), chain(X, R).

        % peers under the same direct boss (unordered pairs via !=).
        peers(A, B) :- reports(M, A), reports(M, B), A != B.
    "#;
    let unit = parse_program(source)?;
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone())?;
    let interner = unit.program.interner.clone();

    let chain = (interner.get("chain").unwrap(), 2);
    let peers = (interner.get("peers").unwrap(), 2);

    let result = seminaive_eval(&unit.program, &db)?;
    println!("everyone under Ada Lovelace:");
    let ada = Value::Sym(interner.get("Ada Lovelace").unwrap());
    for t in result.relation(chain).sorted() {
        if t.get(0) == ada {
            println!("  {}", t.get(1).display(&interner));
        }
    }

    println!("\npeer pairs (same direct boss):");
    for t in result.relation(peers).sorted() {
        println!(
            "  {} ↔ {}",
            t.get(0).display(&interner),
            t.get(1).display(&interner)
        );
    }

    // The same program runs under the §7 general scheme: `chain` is a
    // linear sirup but `peers` makes the program multi-rule, so T_i is
    // the right rewriting. Discriminate each rule on its first body
    // variable.
    let h: DiscriminatorRef = std::sync::Arc::new(HashMod::new(3, 7));
    let choices: Vec<RuleChoice> = unit
        .program
        .rules
        .iter()
        .map(|rule| {
            let v = rule
                .body_atoms()
                .flat_map(|a| a.variables().collect::<Vec<_>>())
                .next()
                .expect("every rule has a body variable");
            RuleChoice {
                v: vec![v],
                h: h.clone(),
            }
        })
        .collect();
    let scheme = rewrite_general(
        &unit.program,
        &choices,
        &db,
        parallel_datalog::core::schemes::BaseDistribution::Shared,
    )?;
    let outcome = scheme.run()?;
    assert!(outcome.relation(chain).set_eq(&result.relation(chain)));
    assert!(outcome.relation(peers).set_eq(&result.relation(peers)));
    println!(
        "\nparallel (§7 T_i, 3 processors): identical answers, {} tuples crossed channels ✓",
        outcome.stats.total_tuples_sent()
    );
    Ok(())
}
