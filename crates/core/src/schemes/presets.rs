//! Ready-made §4 algorithms: the three parallel transitive-closure
//! evaluations the paper derives from one framework by varying the
//! discriminating sequence.
//!
//! | Preset | Paper | `v(r)` | communication | base relation |
//! |---|---|---|---|---|
//! | [`example1_wolfson`] | Ex. 1, ref \[19\] | `⟨Y⟩` (cycle) | none | shared |
//! | [`example2_valduriez`] | Ex. 2, ref \[16\] | `⟨X,Z⟩` (fragment) | broadcast | any fragmentation |
//! | [`example3_hash_partition`] | Ex. 3, new | `⟨Z⟩` | point-to-point | disjoint hash fragments |
//!
//! Each preset works for any linear sirup in *transitive-closure shape*:
//! `t(X,Y) :- b(X,Z), t(Z,Y)` with exit `t(X,Y) :- s(X,Y)` — positions
//! may differ; the shape requirements are validated per preset.

use std::sync::Arc;

use gst_common::{Error, Result};
use gst_frontend::ast::Term;
use gst_frontend::{LinearSirup, Variable};
use gst_storage::{Database, Fragmentation};

use crate::dataflow::zero_comm_choice;
use crate::discriminator::{
    Discriminator, DiscriminatorRef, FragmentOwner, HashMod, SkewAwareHashMod, SymmetricHashMod,
};
use crate::schemes::common::BaseDistribution;
use crate::schemes::nonredundant::{rewrite_non_redundant, NonRedundantConfig};
use crate::schemes::CompiledScheme;
use crate::strategy::{sample_key_frequencies, SkewPolicy};

/// Example 1 — the Wolfson–Silberschatz algorithm \[19\]: discriminate on a
/// dataflow-graph cycle, so no tuple ever changes processors. Works for
/// any sirup whose dataflow graph has a cycle (Theorem 3); the base
/// relations are shared.
pub fn example1_wolfson(sirup: &LinearSirup, n: usize, db: &Database) -> Result<CompiledScheme> {
    let choice = zero_comm_choice(sirup)?;
    let h: DiscriminatorRef = Arc::new(SymmetricHashMod::new(n, 0xE1));
    let cfg = NonRedundantConfig {
        v_r: choice.v_r,
        v_e: choice.v_e,
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 1 (Wolfson–Silberschatz, zero communication)";
    Ok(scheme)
}

/// Example 2 — the Valduriez–Khoshafian algorithm \[16\]: an *arbitrary*
/// horizontal fragmentation of the base relation; `h(t) = owner fragment`.
/// The ownership test is not evaluable remotely, so every processor
/// broadcasts its new tuples — correct and non-redundant, at maximal
/// communication.
///
/// Requires the recursive rule's base atoms and the exit body to be a
/// single atom over the fragmented predicate (the TC shape).
pub fn example2_valduriez(
    sirup: &LinearSirup,
    fragmentation: Fragmentation,
    db: &Database,
) -> Result<CompiledScheme> {
    if sirup.base_atoms.len() != 1 {
        return Err(Error::Shape(
            "Example 2 needs exactly one base atom in the recursive rule".into(),
        ));
    }
    let pivot = &sirup.base_atoms[0];
    if pivot.pred() != sirup.source {
        return Err(Error::Shape(
            "Example 2 needs the exit rule's base predicate to match the \
             recursive rule's base atom (both read the fragmented relation)"
                .into(),
        ));
    }
    let v_r = vars_of(&pivot.terms, "the recursive base atom")?;
    let exit_atom = sirup
        .exit_rule()
        .body_atoms()
        .next()
        .expect("canonical exit rule");
    let v_e = vars_of(&exit_atom.terms, "the exit body atom")?;
    let h: DiscriminatorRef = Arc::new(FragmentOwner::new(Arc::new(fragmentation)));
    let cfg = NonRedundantConfig {
        v_r,
        v_e,
        h: h.clone(),
        h_prime: h,
        // FragmentOwner constraints carve out exactly each worker's
        // fragment — the paper's `par^i`.
        base: BaseDistribution::MinimalFragments,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 2 (Valduriez–Khoshafian, fragmented + broadcast)";
    Ok(scheme)
}

/// Example 3 — the paper's new algorithm: hash-discriminate on the
/// variable `Ȳ` and the exit head share at a dataflow position, giving
/// point-to-point communication over disjoint base fragments — strictly
/// between Examples 1 and 2 on both axes.
///
/// The position picked is the first position `p` such that `Ȳ_p` is a
/// variable occurring in some base atom of the recursive rule (ancestor:
/// `p = 0`, `v(r) = ⟨Z⟩`, `v(e) = ⟨X⟩`).
pub fn example3_hash_partition(
    sirup: &LinearSirup,
    n: usize,
    db: &Database,
) -> Result<CompiledScheme> {
    let base_vars: Vec<Variable> = sirup
        .base_atoms
        .iter()
        .flat_map(|a| a.variables().collect::<Vec<_>>())
        .collect();
    let mut picked = None;
    for (p, term) in sirup.recursive_args.iter().enumerate() {
        if let Term::Var(v) = term {
            if base_vars.contains(v) {
                if let Some(Term::Var(e)) = sirup.exit_head.get(p) {
                    picked = Some((p, *v, *e));
                    break;
                }
            }
        }
    }
    let Some((_p, v_r_var, v_e_var)) = picked else {
        return Err(Error::Shape(
            "Example 3 needs a recursive-atom position whose variable occurs in a \
             base atom and whose exit-head position is a variable"
                .into(),
        ));
    };
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 0xE3));
    let cfg = NonRedundantConfig {
        v_r: vec![v_r_var],
        v_e: vec![v_e_var],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::MinimalFragments,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "Example 3 (hash partition, point-to-point)";
    Ok(scheme)
}

/// Skew-aware variant of Example 3 (ROADMAP item 4): the same hash
/// partition on the recursive position, except `h` and `h'` sample the EDB
/// at compile time and split each *hot* key across `k` processors.
///
/// Mechanically this is still the §3 non-redundant scheme — only over an
/// *extended* discriminating sequence: the Example-3 key variable followed
/// by the remaining variables of the recursive atom (resp. exit head), so
/// the secondary hash has something to split on. A [`SkewAwareHashMod`]
/// routes cold keys exactly like Example 3's `HashMod` (same seed, same
/// key hash) and spreads a hot key's instances across its split set; the
/// fragmenter replicates the hot key's complementary base fragment to
/// every member of that set via the prefix-coverage rule (§6 `R_i`: pay
/// redundant storage, keep every firing local). With no hot keys detected
/// the compiled scheme routes tuple-for-tuple like Example 3.
pub fn skew_aware_hash_partition(
    sirup: &LinearSirup,
    n: usize,
    db: &Database,
    policy: &SkewPolicy,
) -> Result<CompiledScheme> {
    let base_vars: Vec<Variable> = sirup
        .base_atoms
        .iter()
        .flat_map(|a| a.variables().collect::<Vec<_>>())
        .collect();
    let mut picked = None;
    for (p, term) in sirup.recursive_args.iter().enumerate() {
        if let Term::Var(v) = term {
            if base_vars.contains(v) {
                if let Some(Term::Var(e)) = sirup.exit_head.get(p) {
                    picked = Some((*v, *e));
                    break;
                }
            }
        }
    }
    let Some((v_r_var, v_e_var)) = picked else {
        return Err(Error::Shape(
            "skew-aware partition needs a recursive-atom position whose variable \
             occurs in a base atom and whose exit-head position is a variable"
                .into(),
        ));
    };

    // Extended sequences: the key variable first, then the remaining
    // distinct variables of the recursive atom / exit head. Every extended
    // variable still appears in the corresponding rule body, so the
    // sequences stay valid and the sending rules stay point-to-point.
    let v_r = extend_sequence(v_r_var, &sirup.recursive_args);
    let v_e = extend_sequence(v_e_var, &sirup.exit_head);

    let split_k = if policy.split_k == 0 {
        n
    } else {
        policy.split_k.min(n)
    };
    // Example 3's seed: with no hot keys, cold routing is bit-identical.
    //
    // Both functions census the *exit-seed* column. The recursive atom's
    // fragment is seeded by the exit rule's output and then grows by
    // self-join, so the compile-time proxy for "how many recursive tuples
    // carry key value v" is the frequency of v in the column the exit body
    // reads for the key position — not the column a recursive-rule base
    // atom happens to bind. For ancestor both land on `par`'s first column
    // (out-degree): the hub of a star or the head of a zipf distribution.
    let h = skew_hash(sirup, db, v_e_var, n, split_k, policy, 0xE3, 0x53);
    let h_prime = skew_hash(sirup, db, v_e_var, n, split_k, policy, 0xE3, 0x54);
    let hot_keys_split = h.hot_key_count() + h_prime.hot_key_count();

    let cfg = NonRedundantConfig {
        v_r,
        v_e,
        h: Arc::new(h),
        h_prime: Arc::new(h_prime),
        base: BaseDistribution::MinimalFragments,
    };
    let mut scheme = rewrite_non_redundant(sirup, &cfg, db)?;
    scheme.kind = "skew-aware hash partition (sampled hot-key split, §6 R_i)";
    scheme.hot_keys_split = hot_keys_split;
    Ok(scheme)
}

/// `key` followed by the other distinct variables of `terms`, in order.
fn extend_sequence(key: Variable, terms: &[Term]) -> Vec<Variable> {
    let mut seq = vec![key];
    for term in terms {
        if let Term::Var(v) = term {
            if !seq.contains(v) {
                seq.push(*v);
            }
        }
    }
    seq
}

/// Build the skew-aware function for one key variable: census the first
/// base-relation column binding it, flag hot keys per `policy`, and hand
/// each a split set of `split_k` processors starting at its cold-routing
/// home (so one of the replicas is always the worker a plain hash would
/// have used).
#[allow(clippy::too_many_arguments)] // internal builder, one call site per function
fn skew_hash(
    sirup: &LinearSirup,
    db: &Database,
    key_var: Variable,
    n: usize,
    split_k: usize,
    policy: &SkewPolicy,
    seed: u64,
    secondary_seed: u64,
) -> SkewAwareHashMod {
    let cold = SkewAwareHashMod::new(n, 1, seed, secondary_seed);
    // The column to census: where the key variable reads a base relation.
    // The recursive rule's base atoms bind v(r); the exit body binds v(e).
    let exit_atoms: Vec<_> = sirup.exit_rule().body_atoms().cloned().collect();
    let site = sirup
        .base_atoms
        .iter()
        .chain(exit_atoms.iter())
        .find_map(|a| {
            a.terms
                .iter()
                .position(|t| matches!(t, Term::Var(v) if *v == key_var))
                .map(|col| ((a.predicate, a.terms.len()), col))
        });
    let Some((id, col)) = site else {
        return cold; // key never reads a base relation: nothing to sample
    };
    let Some(rel) = db.relation(id) else {
        return cold; // no data: nothing to split
    };
    let profile = sample_key_frequencies(rel, &[col]);
    let hot = profile.hot_keys(n, policy).into_iter().map(|(key, _)| {
        let home = cold
            .assign_prefix(&key)
            .expect("full key prefix always narrows")[0];
        let targets = (0..split_k).map(|j| (home + j) % n).collect();
        (key, targets)
    });
    SkewAwareHashMod::new(n, 1, seed, secondary_seed).with_hot_keys(hot)
}

fn vars_of(terms: &[Term], what: &str) -> Result<Vec<Variable>> {
    let vars: Vec<Variable> = terms.iter().filter_map(Term::as_var).collect();
    if vars.len() != terms.len() {
        return Err(Error::Shape(format!(
            "Example preset requires {what} to have only variables"
        )));
    }
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_eval::seminaive_eval;
    use gst_storage::round_robin_fragment;
    use gst_workloads::{chain, grid, linear_ancestor, random_digraph};

    fn setup() -> (LinearSirup, gst_workloads::Fixture) {
        let fx = linear_ancestor();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        (s, fx)
    }

    #[test]
    fn example1_no_communication_and_correct() {
        let (s, fx) = setup();
        let db = fx.database(&random_digraph(25, 55, 8));
        let scheme = example1_wolfson(&s, 4, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        // The paper's headline property: zero recursive communication.
        assert!(outcome.stats.communication_free());
        // And non-redundant (Theorem 2).
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn example1_base_relation_is_shared() {
        let (s, fx) = setup();
        let db = fx.database(&chain(10));
        let scheme = example1_wolfson(&s, 3, &db).unwrap();
        let par = fx.input_id(0);
        for w in &scheme.workers {
            assert_eq!(w.edb.relation(par).unwrap().len(), 10, "full copy");
        }
    }

    #[test]
    fn example2_arbitrary_fragmentation_and_broadcast() {
        let (s, fx) = setup();
        let edges = random_digraph(20, 45, 3);
        let db = fx.database(&edges);
        // Round-robin is the adversarial "any horizontal fragmentation".
        let frag = round_robin_fragment(&edges, 4).unwrap();
        let scheme = example2_valduriez(&s, frag, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        // Broadcast: every derived tuple crosses every channel, so the
        // channel matrix is (almost) complete.
        let used = outcome.stats.used_channels();
        assert!(
            used.len() >= 9,
            "broadcast should light up most of the 12 channels: {used:?}"
        );
        // Still non-redundant (paper: "the extra communication does not
        // make the parallel execution either incorrect or redundant").
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn example2_workers_hold_their_fragment_only() {
        let (s, fx) = setup();
        let edges = chain(20);
        let db = fx.database(&edges);
        let frag = round_robin_fragment(&edges, 4).unwrap();
        let sizes = frag.sizes();
        let scheme = example2_valduriez(&s, frag, &db).unwrap();
        let par = fx.input_id(0);
        for (i, w) in scheme.workers.iter().enumerate() {
            assert_eq!(
                w.edb.relation(par).map(|r| r.len()).unwrap_or(0),
                sizes[i],
                "worker {i} holds exactly fragment {i}"
            );
        }
    }

    #[test]
    fn example3_point_to_point_and_correct() {
        let (s, fx) = setup();
        let db = fx.database(&grid(5, 5));
        let scheme = example3_hash_partition(&s, 4, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn the_three_examples_order_by_communication() {
        // Paper §4.3: Example 1 < Example 3 < Example 2 in communication.
        let (s, fx) = setup();
        let edges = random_digraph(24, 60, 12);
        let db = fx.database(&edges);
        let n = 4;

        let c1 = example1_wolfson(&s, n, &db).unwrap().run().unwrap();
        let c3 = example3_hash_partition(&s, n, &db).unwrap().run().unwrap();
        let frag = round_robin_fragment(&edges, n).unwrap();
        let c2 = example2_valduriez(&s, frag, &db).unwrap().run().unwrap();

        let (t1, t3, t2) = (
            c1.stats.total_tuples_sent(),
            c3.stats.total_tuples_sent(),
            c2.stats.total_tuples_sent(),
        );
        assert_eq!(t1, 0, "Example 1 is communication-free");
        assert!(t3 > 0, "Example 3 communicates point-to-point");
        assert!(
            t2 > t3,
            "Example 2 broadcasts more than Example 3 routes: {t2} vs {t3}"
        );
    }

    #[test]
    fn example3_fragments_are_smaller_than_replication() {
        let (s, fx) = setup();
        let edges = chain(40);
        let db = fx.database(&edges);
        let n = 4;
        let scheme = example3_hash_partition(&s, n, &db).unwrap();
        let par = fx.input_id(0);
        let total: usize = scheme
            .workers
            .iter()
            .map(|w| w.edb.relation(par).map(|r| r.len()).unwrap_or(0))
            .sum();
        assert!(
            total <= 2 * edges.len(),
            "X- and Z-fragments: ≤ 2·|par| total, got {total}"
        );
        assert!(total < n * edges.len(), "strictly better than replication");
    }

    #[test]
    fn example2_rejects_wrong_shape() {
        let fx = gst_workloads::same_generation();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        let (up, down, flat) = gst_workloads::same_generation_tree(3);
        let db = fx.database_multi(&[up.clone(), down, flat]);
        let frag = round_robin_fragment(&up, 2).unwrap();
        assert!(example2_valduriez(&s, frag, &db).is_err());
    }

    #[test]
    fn example1_rejects_acyclic_dataflow() {
        let fx = gst_workloads::chain_sirup();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        let db = Database::new(fx.program.interner.clone());
        assert!(example1_wolfson(&s, 2, &db).is_err());
    }

    #[test]
    fn skew_aware_matches_oracle_on_skewed_graph() {
        let (s, fx) = setup();
        // A star melts one worker under any key hash: node 0 is the only
        // exit-side key and carries the whole relation.
        let db = fx.database(&gst_workloads::star(40));
        let policy = crate::strategy::SkewPolicy::default();
        let scheme = skew_aware_hash_partition(&s, 4, &db, &policy).unwrap();
        assert!(scheme.hot_keys_split >= 1, "star's hub must be flagged hot");
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
    }

    #[test]
    fn skew_aware_without_hot_keys_matches_example3_routing() {
        let (s, fx) = setup();
        // A chain is perfectly uniform: no key exceeds two fair shares, so
        // the sampler flags nothing and cold routing is Example 3's hash.
        let db = fx.database(&chain(30));
        let policy = crate::strategy::SkewPolicy::default();
        let skew = skew_aware_hash_partition(&s, 4, &db, &policy).unwrap();
        assert_eq!(skew.hot_keys_split, 0);
        let ex3 = example3_hash_partition(&s, 4, &db).unwrap();
        let a = skew.run().unwrap();
        let b = ex3.run().unwrap();
        let anc = fx.output_id();
        assert!(a.relation(anc).set_eq(&b.relation(anc)));
        // Same per-worker firings: every instance routed to the same home.
        for w in 0..4 {
            assert_eq!(
                a.stats.workers[w].processing_firings,
                b.stats.workers[w].processing_firings,
                "worker {w} diverged from Example 3 routing"
            );
        }
        assert_eq!(
            a.stats.total_tuples_sent(),
            b.stats.total_tuples_sent(),
            "cold-only routing ships the same tuples"
        );
    }

    #[test]
    fn skew_aware_replicates_hot_fragment_only() {
        let (s, fx) = setup();
        let edges = gst_workloads::star(32);
        let db = fx.database(&edges);
        let policy = crate::strategy::SkewPolicy::default();
        let scheme = skew_aware_hash_partition(&s, 4, &db, &policy).unwrap();
        let par = fx.input_id(0);
        // The hub key is split across all 4 workers, so its complementary
        // fragment (the whole star) is replicated — but total storage is
        // still bounded by the split factor, not silently "share all".
        let total: usize = scheme
            .workers
            .iter()
            .map(|w| w.edb.relation(par).map(|r| r.len()).unwrap_or(0))
            .sum();
        assert!(total >= edges.len(), "every worker in the split set holds the hub fragment");
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
    }

    #[test]
    fn skew_aware_balances_star_init_firings() {
        let (s, fx) = setup();
        let db = fx.database(&gst_workloads::star(64));
        let n = 4;
        let skew_fn = |outcome: &gst_runtime::ExecutionOutcome| {
            let per: Vec<u64> = (0..n)
                .map(|w| outcome.stats.workers[w].processing_firings)
                .collect();
            let max = *per.iter().max().unwrap() as f64;
            let mean = per.iter().sum::<u64>() as f64 / n as f64;
            if mean == 0.0 { 1.0 } else { max / mean }
        };
        let plain = example3_hash_partition(&s, n, &db).unwrap().run().unwrap();
        let policy = crate::strategy::SkewPolicy::default();
        let skewed = skew_aware_hash_partition(&s, n, &db, &policy)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            skew_fn(&skewed) * 2.0 <= skew_fn(&plain),
            "hot-key splitting must at least halve star skew: {} vs {}",
            skew_fn(&skewed),
            skew_fn(&plain)
        );
    }
}
