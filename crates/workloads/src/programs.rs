//! The program corpus: every Datalog program the paper names, parsed and
//! ready, plus helpers to assemble databases for them.

use gst_common::{Interner, SymbolId};
use gst_frontend::{parse_program, Program};
use gst_storage::{Database, Relation};

/// A program together with the names of its input and output relations.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// The parsed program.
    pub program: Program,
    /// Base relation names and arities expected in the database.
    pub inputs: Vec<(&'static str, usize)>,
    /// The output (derived) predicate name and arity.
    pub output: (&'static str, usize),
}

impl Fixture {
    fn parse(src: &str, inputs: Vec<(&'static str, usize)>, output: (&'static str, usize)) -> Self {
        let program = parse_program(src).expect("corpus programs parse").program;
        Fixture {
            program,
            inputs,
            output,
        }
    }

    /// Interned relation id of the output predicate.
    pub fn output_id(&self) -> (SymbolId, usize) {
        (
            self.program
                .interner
                .get(self.output.0)
                .expect("output predicate occurs in program"),
            self.output.1,
        )
    }

    /// Interned relation id of the `k`-th input predicate.
    pub fn input_id(&self, k: usize) -> (SymbolId, usize) {
        let (name, arity) = self.inputs[k];
        (
            self.program
                .interner
                .get(name)
                .expect("input predicate occurs in program"),
            arity,
        )
    }

    /// Build a database binding the single input relation (panics if the
    /// fixture has several — use [`Fixture::database_multi`] then).
    pub fn database(&self, edges: &Relation) -> Database {
        assert_eq!(self.inputs.len(), 1, "fixture has multiple inputs");
        self.database_multi(std::slice::from_ref(edges))
    }

    /// Build a database binding every input relation, in `inputs` order.
    pub fn database_multi(&self, relations: &[Relation]) -> Database {
        assert_eq!(relations.len(), self.inputs.len());
        let interner: Interner = self.program.interner.clone();
        let mut db = Database::new(interner);
        for (k, rel) in relations.iter().enumerate() {
            let id = self.input_id(k);
            assert_eq!(rel.arity(), id.1, "input arity mismatch");
            db.put_relation(id, rel.clone()).expect("arity checked");
        }
        db
    }
}

/// The paper's running example (§2, §4): linear transitive closure.
///
/// ```text
/// anc(X,Y) :- par(X,Y).
/// anc(X,Y) :- par(X,Z), anc(Z,Y).
/// ```
pub fn linear_ancestor() -> Fixture {
    Fixture::parse(
        "anc(X,Y) :- par(X,Y).\n\
         anc(X,Y) :- par(X,Z), anc(Z,Y).",
        vec![("par", 2)],
        ("anc", 2),
    )
}

/// Right-linear variant (the recursive call first).
pub fn right_linear_ancestor() -> Fixture {
    Fixture::parse(
        "anc(X,Y) :- par(X,Y).\n\
         anc(X,Y) :- anc(X,Z), par(Z,Y).",
        vec![("par", 2)],
        ("anc", 2),
    )
}

/// Example 8 (§7): non-linear ancestor.
///
/// ```text
/// anc(X,Y) :- par(X,Y).
/// anc(X,Y) :- anc(X,Z), anc(Z,Y).
/// ```
pub fn nonlinear_ancestor() -> Fixture {
    Fixture::parse(
        "anc(X,Y) :- par(X,Y).\n\
         anc(X,Y) :- anc(X,Z), anc(Z,Y).",
        vec![("par", 2)],
        ("anc", 2),
    )
}

/// Examples 4 and 7: the arity-3 chain sirup whose dataflow graph is the
/// acyclic `1 → 2 → 3`.
///
/// ```text
/// p(U,V,W) :- s(U,V,W).
/// p(U,V,W) :- p(V,W,Z), q(U,Z).
/// ```
pub fn chain_sirup() -> Fixture {
    Fixture::parse(
        "p(U,V,W) :- s(U,V,W).\n\
         p(U,V,W) :- p(V,W,Z), q(U,Z).",
        vec![("s", 3), ("q", 2)],
        ("p", 3),
    )
}

/// Example 6 (§5): the sirup used to derive the four-processor network
/// graph of Figure 3.
///
/// ```text
/// p(X,Y) :- q(X,Y).
/// p(X,Y) :- p(Y,Z), r(X,Z).
/// ```
pub fn example6_sirup() -> Fixture {
    Fixture::parse(
        "p(X,Y) :- q(X,Y).\n\
         p(X,Y) :- p(Y,Z), r(X,Z).",
        vec![("q", 2), ("r", 2)],
        ("p", 2),
    )
}

/// The classic same-generation sirup (linear, two extra base atoms).
///
/// ```text
/// sg(X,Y) :- flat(X,Y).
/// sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
/// ```
pub fn same_generation() -> Fixture {
    Fixture::parse(
        "sg(X,Y) :- flat(X,Y).\n\
         sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).",
        vec![("up", 2), ("down", 2), ("flat", 2)],
        ("sg", 2),
    )
}

/// A mutually recursive two-predicate program (outside the sirup class;
/// exercises the §7 general scheme).
///
/// ```text
/// even(X) :- zero(X).
/// even(Y) :- succ(X,Y), odd(X).
/// odd(Y)  :- succ(X,Y), even(X).
/// ```
pub fn even_odd() -> Fixture {
    Fixture::parse(
        "even(X) :- zero(X).\n\
         even(Y) :- succ(X,Y), odd(X).\n\
         odd(Y) :- succ(X,Y), even(X).",
        vec![("zero", 1), ("succ", 2)],
        ("even", 1),
    )
}

/// Every sirup fixture (programs Sections 3–6 apply to).
pub fn sirup_corpus() -> Vec<(&'static str, Fixture)> {
    vec![
        ("linear_ancestor", linear_ancestor()),
        ("right_linear_ancestor", right_linear_ancestor()),
        ("chain_sirup", chain_sirup()),
        ("example6_sirup", example6_sirup()),
        ("same_generation", same_generation()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{chain, same_generation_tree};
    use gst_eval::seminaive_eval;
    use gst_frontend::LinearSirup;

    #[test]
    fn all_sirups_are_recognized_as_linear_sirups() {
        for (name, fixture) in sirup_corpus() {
            assert!(
                LinearSirup::from_program(&fixture.program).is_ok(),
                "{name} should be a linear sirup"
            );
        }
    }

    #[test]
    fn nonlinear_ancestor_is_not_a_sirup() {
        assert!(LinearSirup::from_program(&nonlinear_ancestor().program).is_err());
    }

    #[test]
    fn fixtures_evaluate() {
        let fx = linear_ancestor();
        let db = fx.database(&chain(5));
        let result = seminaive_eval(&fx.program, &db).unwrap();
        assert_eq!(result.relation(fx.output_id()).len(), 15);
    }

    #[test]
    fn right_and_left_linear_agree() {
        let edges = crate::graphs::random_digraph(20, 40, 5);
        let l = linear_ancestor();
        let r = right_linear_ancestor();
        let a = seminaive_eval(&l.program, &l.database(&edges)).unwrap();
        let b = seminaive_eval(&r.program, &r.database(&edges)).unwrap();
        assert!(a.relation(l.output_id()).set_eq(&b.relation(r.output_id())));
    }

    #[test]
    fn same_generation_runs_on_tree() {
        let fx = same_generation();
        let (up, down, flat) = same_generation_tree(4);
        let db = fx.database_multi(&[up, down, flat]);
        let result = seminaive_eval(&fx.program, &db).unwrap();
        let sg = result.relation(fx.output_id());
        // Root is same-generation with itself; siblings 2,3 also.
        assert!(sg.contains(&gst_common::ituple![1, 1]));
        assert!(sg.contains(&gst_common::ituple![2, 3]));
        assert!(sg.contains(&gst_common::ituple![4, 7]));
        assert!(!sg.contains(&gst_common::ituple![1, 2]));
    }

    #[test]
    fn even_odd_alternates() {
        let fx = even_odd();
        // succ chain 0..6, zero(0).
        let succ: Relation = (0..6i64).map(|k| gst_common::ituple![k, k + 1]).collect();
        let zero: Relation = [gst_common::ituple![0]].into_iter().collect();
        let db = fx.database_multi(&[zero, succ]);
        let result = seminaive_eval(&fx.program, &db).unwrap();
        let even = result.relation(fx.output_id());
        let odd_id = (fx.program.interner.get("odd").unwrap(), 1);
        let odd = result.relation(odd_id);
        assert_eq!(even.sorted(), vec![
            gst_common::ituple![0],
            gst_common::ituple![2],
            gst_common::ituple![4],
            gst_common::ituple![6]
        ]);
        assert_eq!(odd.len(), 3);
    }

    #[test]
    fn input_and_output_ids_resolve() {
        let fx = chain_sirup();
        assert_eq!(fx.inputs.len(), 2);
        let _ = fx.output_id();
        let _ = fx.input_id(0);
        let _ = fx.input_id(1);
    }
}
