//! Horizontal fragmentation of relations.
//!
//! The paper's Example 2 (Valduriez–Khoshafian) runs over *any* horizontal
//! partition `par = par¹ ∪ … ∪ parᴺ` with disjoint fragments; Example 3
//! requires the specific partition induced by a discriminating function on
//! one column. [`hash_fragment`] produces the latter; [`Fragmentation`]
//! represents either and can validate the disjoint/covering invariants and
//! answer *owner* queries (which the Example-2 discriminating function
//! `h(a,b) = i ⇔ (a,b) ∈ parⁱ` is defined by).

use gst_common::{fxhash::hash_one, Error, FxHashMap, Result, Tuple};

use crate::relation::Relation;

/// A horizontal partition of one relation into `n` disjoint fragments.
#[derive(Debug, Clone)]
pub struct Fragmentation {
    fragments: Vec<Relation>,
    owner: FxHashMap<Tuple, usize>,
}

impl Fragmentation {
    /// Build from explicit fragments.
    ///
    /// # Errors
    /// Fails if fragments have differing arity or overlap (a tuple in two
    /// fragments would break the disjointness Example 2 relies on).
    pub fn from_fragments(fragments: Vec<Relation>) -> Result<Self> {
        if fragments.is_empty() {
            return Err(Error::Storage("a fragmentation needs at least one fragment".into()));
        }
        let arity = fragments[0].arity();
        let mut owner: FxHashMap<Tuple, usize> = FxHashMap::default();
        for (i, frag) in fragments.iter().enumerate() {
            if frag.arity() != arity {
                return Err(Error::Storage(format!(
                    "fragment {i} has arity {}, expected {arity}",
                    frag.arity()
                )));
            }
            for t in frag.iter() {
                if let Some(prev) = owner.insert(t.clone(), i) {
                    return Err(Error::Storage(format!(
                        "fragments {prev} and {i} overlap on a tuple"
                    )));
                }
            }
        }
        Ok(Fragmentation { fragments, owner })
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True when there are no fragments (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The `i`-th fragment.
    pub fn fragment(&self, i: usize) -> &Relation {
        &self.fragments[i]
    }

    /// All fragments in order.
    pub fn fragments(&self) -> &[Relation] {
        &self.fragments
    }

    /// Which fragment holds `tuple`, if any. This is the Example-2
    /// discriminating function: `h(t) = i ⇔ t ∈ parⁱ`.
    pub fn owner_of(&self, tuple: &Tuple) -> Option<usize> {
        self.owner.get(tuple).copied()
    }

    /// Union of all fragments (the reconstructed relation).
    pub fn union(&self) -> Relation {
        let mut out = Relation::new(self.fragments[0].arity());
        for frag in &self.fragments {
            out.absorb(frag).expect("arity checked at construction");
        }
        out
    }

    /// Check that the fragmentation exactly covers `original`.
    pub fn covers(&self, original: &Relation) -> bool {
        self.union().set_eq(original)
    }

    /// Sizes of all fragments (diagnostics: skew measurement).
    pub fn sizes(&self) -> Vec<usize> {
        self.fragments.iter().map(Relation::len).collect()
    }
}

/// Partition `relation` into `n` fragments by hashing the projection onto
/// `columns`. With `columns = [1]` on `par(X, Z)` this is exactly the
/// fragmentation Example 3 requires (`par^i = {par(X,Z) | h(Z) = i}`).
pub fn hash_fragment(relation: &Relation, columns: &[usize], n: usize) -> Result<Fragmentation> {
    if n == 0 {
        return Err(Error::Storage("cannot fragment into 0 pieces".into()));
    }
    let mut fragments = vec![Relation::new(relation.arity()); n];
    for t in relation.iter() {
        let i = (hash_one(&t.project(columns)) % n as u64) as usize;
        fragments[i].insert_unchecked(t.clone());
    }
    Fragmentation::from_fragments(fragments)
}

/// Distribute `relation` into `n` possibly *overlapping* pieces: `targets`
/// names every worker that must hold a given tuple. This is the §6 `R_i`
/// replicating counterpart of [`hash_fragment`] — a skew-aware partition
/// replicates a hot key's complementary join fragment to every member of
/// the key's split set, deliberately breaking the disjointness invariant
/// [`Fragmentation`] enforces, so the result is a plain `Vec<Relation>`.
///
/// # Errors
/// Fails when `n` is zero or `targets` names a worker out of range.
pub fn replicated_fragments<F>(
    relation: &Relation,
    n: usize,
    mut targets: F,
) -> Result<Vec<Relation>>
where
    F: FnMut(&Tuple) -> Vec<usize>,
{
    if n == 0 {
        return Err(Error::Storage("cannot fragment into 0 pieces".into()));
    }
    let mut fragments = vec![Relation::new(relation.arity()); n];
    for t in relation.iter() {
        for i in targets(t) {
            if i >= n {
                return Err(Error::Storage(format!(
                    "replication target {i} out of range for {n} workers"
                )));
            }
            fragments[i].insert_unchecked(t.clone());
        }
    }
    Ok(fragments)
}

/// Partition `relation` round-robin over its (arbitrary) iteration order —
/// an "adversarial" fragmentation exercising Example 2's claim that *any*
/// horizontal partition works.
pub fn round_robin_fragment(relation: &Relation, n: usize) -> Result<Fragmentation> {
    if n == 0 {
        return Err(Error::Storage("cannot fragment into 0 pieces".into()));
    }
    let mut fragments = vec![Relation::new(relation.arity()); n];
    // Sort for determinism: iteration order of a hash set is unstable.
    for (k, t) in relation.sorted().into_iter().enumerate() {
        fragments[k % n].insert_unchecked(t);
    }
    Fragmentation::from_fragments(fragments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    fn chain(n: i64) -> Relation {
        (0..n).map(|k| ituple![k, k + 1]).collect()
    }

    #[test]
    fn hash_fragment_is_disjoint_and_covering() {
        let rel = chain(100);
        let frag = hash_fragment(&rel, &[1], 4).unwrap();
        assert_eq!(frag.len(), 4);
        assert!(frag.covers(&rel));
        assert_eq!(frag.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn hash_fragment_groups_by_key() {
        // Tuples sharing column-1 value land in the same fragment.
        let mut rel = Relation::new(2);
        rel.insert(ituple![1, 7]).unwrap();
        rel.insert(ituple![2, 7]).unwrap();
        rel.insert(ituple![3, 7]).unwrap();
        let frag = hash_fragment(&rel, &[1], 3).unwrap();
        let nonempty: Vec<usize> = frag.sizes().into_iter().filter(|&s| s > 0).collect();
        assert_eq!(nonempty, vec![3]);
    }

    #[test]
    fn owner_matches_membership() {
        let rel = chain(50);
        let frag = hash_fragment(&rel, &[0], 5).unwrap();
        for t in rel.iter() {
            let i = frag.owner_of(t).unwrap();
            assert!(frag.fragment(i).contains(t));
        }
        assert_eq!(frag.owner_of(&ituple![999, 999]), None);
    }

    #[test]
    fn round_robin_covers() {
        let rel = chain(10);
        let frag = round_robin_fragment(&rel, 3).unwrap();
        assert!(frag.covers(&rel));
        // Sizes are balanced to within 1.
        let sizes = frag.sizes();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn overlapping_fragments_rejected() {
        let a: Relation = [ituple![1, 2]].into_iter().collect();
        let b: Relation = [ituple![1, 2], ituple![2, 3]].into_iter().collect();
        assert!(Fragmentation::from_fragments(vec![a, b]).is_err());
    }

    #[test]
    fn mixed_arity_fragments_rejected() {
        let a: Relation = [ituple![1, 2]].into_iter().collect();
        let b: Relation = [ituple![1]].into_iter().collect();
        assert!(Fragmentation::from_fragments(vec![a, b]).is_err());
    }

    #[test]
    fn zero_fragments_rejected() {
        assert!(hash_fragment(&chain(5), &[0], 0).is_err());
        assert!(round_robin_fragment(&chain(5), 0).is_err());
        assert!(Fragmentation::from_fragments(vec![]).is_err());
    }

    #[test]
    fn single_fragment_is_identity() {
        let rel = chain(20);
        let frag = hash_fragment(&rel, &[0], 1).unwrap();
        assert!(frag.fragment(0).set_eq(&rel));
        assert!(!frag.is_empty());
    }

    #[test]
    fn union_reconstructs() {
        let rel = chain(30);
        let frag = round_robin_fragment(&rel, 7).unwrap();
        assert!(frag.union().set_eq(&rel));
    }

    #[test]
    fn replicated_fragments_overlap_where_asked() {
        let rel = chain(20);
        // Even keys replicate to workers 0 and 2; odd keys go to worker 1.
        let frags = replicated_fragments(&rel, 3, |t| {
            if t.as_slice()[0].as_int().unwrap() % 2 == 0 {
                vec![0, 2]
            } else {
                vec![1]
            }
        })
        .unwrap();
        assert_eq!(frags.len(), 3);
        assert!(frags[0].set_eq(&frags[2]), "replicas are identical");
        assert_eq!(frags[0].len() + frags[1].len(), 20);
        // The union still reconstructs the relation.
        let mut union = Relation::new(2);
        for f in &frags {
            union.absorb(f).unwrap();
        }
        assert!(union.set_eq(&rel));
        // Out-of-range targets and n=0 are rejected.
        assert!(replicated_fragments(&rel, 3, |_| vec![3]).is_err());
        assert!(replicated_fragments(&rel, 0, |_| vec![0]).is_err());
    }
}
