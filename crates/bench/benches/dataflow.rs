//! F1/F2 micro-benchmarks: dataflow-graph construction and the Theorem-3
//! chooser are compile-time operations; they must be trivially cheap.

use gst_bench::micro::{Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::dataflow::{zero_comm_choice, DataflowGraph};
use gst_frontend::LinearSirup;
use gst_workloads::{chain_sirup, linear_ancestor};

fn bench_dataflow(c: &mut Criterion) {
    let anc = LinearSirup::from_program(&linear_ancestor().program).unwrap();
    let chain = LinearSirup::from_program(&chain_sirup().program).unwrap();
    c.bench_function("dataflow/build-ancestor", |b| {
        b.iter(|| DataflowGraph::of(&anc))
    });
    c.bench_function("dataflow/build-chain-sirup", |b| {
        b.iter(|| DataflowGraph::of(&chain))
    });
    c.bench_function("dataflow/theorem3-chooser", |b| {
        b.iter(|| zero_comm_choice(&anc).unwrap())
    });
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
