//! Top-level execution entry points and runtime configuration.
//!
//! The part of the paper's architecture that lives outside any single
//! processor: wiring the complete channel set the abstract architecture
//! assumes (schemes needing fewer channels simply never use the rest),
//! running every worker to distributed termination, and the *final
//! pooling* step — the union `t(W̄) :- t_out^i(W̄)` over all processors.
//!
//! The mechanics live behind the [`Transport`] trait
//! ([`crate::transport`]); [`execute_processors`] is the conventional
//! entry point bound to the OS-thread transport.

use crate::spec::WorkerSpec;
use crate::stats::ExecutionOutcome;
use crate::transport::{ThreadedTransport, Transport};
use crate::worker::WorkerConfig;
use gst_common::Result;

/// Crash-recovery knobs for the supervising transport.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How many times a *recoverable* worker death (panic, injected
    /// crash) may be answered with a restart before the run aborts. Fatal
    /// errors (spec/arity bugs, watchdog expiry) always abort immediately.
    /// `0` disables recovery entirely: any death fails the run fast.
    pub max_restarts: u32,
    /// Pause before each restart, scaled linearly by the worker's restart
    /// count (crash-looping workers back off harder).
    pub restart_backoff: std::time::Duration,
    /// Deterministic crash injection for the threaded transport: kill one
    /// worker's first incarnation after a fixed number of steps, as a
    /// recoverable death. Test-oriented — the simulator injects crashes
    /// via its [`crate::fault::FaultPlan`] instead.
    pub fail_point: Option<FailPoint>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 1,
            restart_backoff: std::time::Duration::from_millis(10),
            fail_point: None,
        }
    }
}

/// A deterministic injected crash: `worker`'s first incarnation dies
/// (recoverably) after `after_steps` scheduling quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPoint {
    /// The worker whose first incarnation dies.
    pub worker: usize,
    /// Steps the incarnation performs before dying.
    pub after_steps: u64,
}

/// Configuration for a parallel execution.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// Per-worker knobs (poll interval, watchdog).
    pub worker: WorkerConfig,
    /// Crash-recovery knobs (restart budget, backoff, fail-point).
    pub supervisor: SupervisorConfig,
    /// Record the event journal ([`crate::obs`]). Off by default: workers
    /// then carry disabled sinks and pay one branch per would-be event.
    pub trace: bool,
}

/// Execute one [`WorkerSpec`] per processor on OS threads and pool the
/// results.
///
/// `specs[i].program.processor` must equal `i` — the ring used for
/// termination detection and the channel matrix are indexed by position.
/// Equivalent to `ThreadedTransport.execute(specs, config)`.
pub fn execute_processors(
    specs: Vec<WorkerSpec>,
    config: &RuntimeConfig,
) -> Result<ExecutionOutcome> {
    ThreadedTransport.execute(specs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_frontend::parse_program;
    use gst_storage::Database;
    use std::sync::Arc;

    /// Hand-built two-processor pipeline:
    /// processor 0 derives t0 from its fragment and ships everything to 1;
    /// processor 1 stores what it receives. Exercise wiring, inboxes,
    /// pooling and termination without the rewrite layer.
    #[test]
    fn two_stage_pipeline_pools_results() {
        let interner = Interner::new();
        // Processor 0: out0(X) :- e(X). ship0 holds what goes to 1.
        let unit0 = gst_frontend::parser::parse_program_with(
            "out0(X) :- e(X).\n\
             ship0(X) :- out0(X).",
            &interner,
        )
        .unwrap();
        // Processor 1: out1(X) :- inbox1(X).
        let unit1 = gst_frontend::parser::parse_program_with("out1(X) :- inbox1(X).", &interner)
            .unwrap();

        let e = (interner.intern("e"), 1);
        let ship0 = (interner.get("ship0").unwrap(), 1);
        let inbox1 = (interner.intern("inbox1"), 1);
        let out0 = (interner.get("out0").unwrap(), 1);
        let out1 = (interner.get("out1").unwrap(), 1);
        let answer = (interner.intern("answer"), 1);

        let mut db0 = Database::new(interner.clone());
        db0.insert(e, ituple![1]).unwrap();
        db0.insert(e, ituple![2]).unwrap();
        let db1 = Database::new(interner.clone());

        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut {
                    channel: ship0,
                    dest: 1,
                    inbox: inbox1,
                }],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![(out0, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db0),
            session: None,
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![],
                inboxes: vec![inbox1],
                processing_rules: vec![0],
                pooling: vec![(out1, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db1),
            session: None,
        };

        let outcome =
            execute_processors(vec![spec0, spec1], &RuntimeConfig::default()).unwrap();
        let answer_rel = outcome.relation(answer);
        assert_eq!(answer_rel.len(), 2);
        assert!(answer_rel.contains(&ituple![1]));
        // Processor 0 shipped both tuples to processor 1.
        assert_eq!(outcome.stats.channel_matrix[0][1], 2);
        assert_eq!(outcome.stats.total_tuples_sent(), 2);
        assert_eq!(outcome.stats.used_channels(), vec![(0, 1)]);
        assert_eq!(outcome.stats.workers[1].received_tuples, 2);
        // A reliable transport delivers nothing twice.
        assert_eq!(outcome.stats.workers[1].duplicate_batches, 0);
    }

    #[test]
    fn single_processor_runs_sequentially() {
        let unit = parse_program("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2). e(2,3).")
            .unwrap();
        let mut db = Database::new(unit.program.interner.clone());
        db.load_facts(unit.facts.clone()).unwrap();
        let t = (unit.program.interner.get("t").unwrap(), 2);
        let global = (unit.program.interner.intern("t_answer"), 2);
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program.clone(),
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![0, 1],
                pooling: vec![(t, global)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        let outcome = execute_processors(vec![spec], &RuntimeConfig::default()).unwrap();
        assert_eq!(outcome.relation(global).len(), 3);
        assert!(outcome.stats.communication_free());
    }

    #[test]
    fn misnumbered_processor_is_rejected() {
        let unit = parse_program("t(X) :- e(X).").unwrap();
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 5,
                program: unit.program.clone(),
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(Database::new(unit.program.interner.clone())),
            session: None,
        };
        assert!(execute_processors(vec![spec], &RuntimeConfig::default()).is_err());
    }

    #[test]
    fn out_of_range_channel_is_rejected() {
        let unit = parse_program("t(X) :- e(X).").unwrap();
        let interner = unit.program.interner.clone();
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program.clone(),
                outgoing: vec![ChannelOut {
                    channel: (interner.intern("c"), 1),
                    dest: 3,
                    inbox: (interner.intern("i"), 1),
                }],
                inboxes: vec![],
                processing_rules: vec![],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(Database::new(interner)),
            session: None,
        };
        assert!(execute_processors(vec![spec], &RuntimeConfig::default()).is_err());
    }

    #[test]
    fn empty_spec_list_is_rejected() {
        assert!(execute_processors(vec![], &RuntimeConfig::default()).is_err());
    }

    /// A peer failure must not hang the fleet — and must not even need
    /// the watchdog: the supervisor broadcasts `Abort` the moment the
    /// fatal error is reported, so the fleet tears down in milliseconds.
    #[test]
    fn worker_failure_is_detected_not_hung() {
        let interner = Interner::new();
        // Worker 0 ships e-tuples (arity 1) into an inbox that worker 1
        // declares with arity 2 — worker 1's inject fails immediately.
        let unit0 = gst_frontend::parser::parse_program_with(
            "out0(X) :- e(X).\nship0(X) :- out0(X).",
            &interner,
        )
        .unwrap();
        let unit1 =
            gst_frontend::parser::parse_program_with("out1(X,Y) :- inbox1(X,Y).", &interner)
                .unwrap();
        let e = (interner.intern("e"), 1);
        let ship0 = (interner.get("ship0").unwrap(), 1);
        let inbox1_wrong = (interner.intern("inbox1"), 2);

        let mut db0 = Database::new(interner.clone());
        db0.insert(e, ituple![1]).unwrap();

        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut {
                    channel: ship0,
                    dest: 1,
                    inbox: inbox1_wrong,
                }],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db0),
            session: None,
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![],
                inboxes: vec![inbox1_wrong],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(Database::new(interner.clone())),
            session: None,
        };

        // Pin the watchdog far above the timing bound: finishing under
        // the bound then proves the Abort broadcast (not the watchdog)
        // performed the teardown, with enough slack that scheduler
        // starvation on a loaded machine cannot flake the assertion.
        let mut config = RuntimeConfig::default();
        config.worker.idle_watchdog = std::time::Duration::from_secs(300);
        let started = std::time::Instant::now();
        let err = execute_processors(vec![spec0, spec1], &config).unwrap_err();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(60),
            "abort must tear the fleet down long before any watchdog"
        );
        let message = err.to_string();
        assert!(
            message.contains("arity"),
            "the causal error (not teardown noise) must surface: {message}"
        );
    }

    /// Crash recovery end to end on OS threads: a fail-point kills one
    /// worker's first incarnation mid-run; the supervisor restarts it,
    /// the fleet repairs the ring, replays, and still computes the full
    /// least model.
    #[test]
    fn fail_point_crash_recovers_on_threads() {
        let interner = Interner::new();
        let unit0 = gst_frontend::parser::parse_program_with(
            "t0(X,Y) :- e0(X,Y).\n\
             t0(X,Y) :- e0(X,Z), in0(Z,Y).\n\
             ship0(Z,Y) :- t0(Z,Y).",
            &interner,
        )
        .unwrap();
        let unit1 = gst_frontend::parser::parse_program_with(
            "t1(X,Y) :- e1(X,Z), in1(Z,Y).\n\
             ship1(Z,Y) :- t1(Z,Y).",
            &interner,
        )
        .unwrap();
        let e0 = (interner.get("e0").unwrap(), 2);
        let e1 = (interner.get("e1").unwrap(), 2);
        let t0 = (interner.get("t0").unwrap(), 2);
        let t1 = (interner.get("t1").unwrap(), 2);
        let in0 = (interner.intern("in0"), 2);
        let in1 = (interner.intern("in1"), 2);
        let ship0 = (interner.get("ship0").unwrap(), 2);
        let ship1 = (interner.get("ship1").unwrap(), 2);
        let answer = (interner.intern("t"), 2);
        let mut db0 = Database::new(interner.clone());
        let mut db1 = Database::new(interner.clone());
        for k in 0..8i64 {
            let id = if k % 2 == 0 { e0 } else { e1 };
            let db = if k % 2 == 0 { &mut db0 } else { &mut db1 };
            db.insert(id, ituple![k, k + 1]).unwrap();
        }
        let specs = vec![
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 0,
                    program: unit0.program,
                    outgoing: vec![ChannelOut { channel: ship0, dest: 1, inbox: in1 }],
                    inboxes: vec![in0],
                    processing_rules: vec![0, 1],
                    pooling: vec![(t0, answer)],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(db0),
                session: None,
            },
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 1,
                    program: unit1.program,
                    outgoing: vec![ChannelOut { channel: ship1, dest: 0, inbox: in0 }],
                    inboxes: vec![in1],
                    processing_rules: vec![0],
                    pooling: vec![(t1, answer)],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(db1),
                session: None,
            },
        ];

        let baseline =
            execute_processors(specs.clone(), &RuntimeConfig::default()).unwrap();

        let mut config = RuntimeConfig::default();
        config.supervisor.fail_point = Some(crate::coordinator::FailPoint {
            worker: 1,
            after_steps: 3,
        });
        let recovered = execute_processors(specs.clone(), &config).unwrap();
        assert_eq!(recovered.stats.restarts, 1, "exactly one restart");
        assert!(
            recovered
                .relation(answer)
                .set_eq(&baseline.relation(answer)),
            "recovery must reach the exact least model"
        );
        assert!(!recovered.relation(answer).is_empty());

        // With recovery disabled the same fail-point aborts the run fast
        // with the injected (typed) error. The watchdog is pinned far
        // above the bound so passing it proves the Abort path (see
        // `worker_failure_is_detected_not_hung`).
        let mut config = RuntimeConfig::default();
        config.supervisor.max_restarts = 0;
        config.worker.idle_watchdog = std::time::Duration::from_secs(300);
        config.supervisor.fail_point = Some(crate::coordinator::FailPoint {
            worker: 1,
            after_steps: 3,
        });
        let started = std::time::Instant::now();
        let err = execute_processors(specs, &config).unwrap_err();
        assert!(started.elapsed() < std::time::Duration::from_secs(60), "no hang");
        assert!(err.to_string().contains("fail-point"), "got: {err}");
    }
}
