//! Execution statistics for parallel runs.
//!
//! These counters are the measurement apparatus of the reproduction:
//! Example 1's "no communication is incurred" becomes
//! `channel_matrix[i][j] == 0` for `i ≠ j`; Theorem 2's non-redundancy
//! becomes `processing_firings ≤` the sequential engine's firings; the §6
//! trade-off becomes the curve of `total_tuples_sent` against
//! `duplicate` firings as the keep-local mix varies.

use std::time::Duration;

use gst_common::FxHashMap;
use gst_eval::plan::RelationId;
use gst_eval::EvalStats;
use gst_storage::Relation;

use crate::obs::Journal;

/// What one worker reports after termination.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Processor index.
    pub processor: usize,
    /// Engine statistics (all rules: init, processing, sending).
    pub eval: EvalStats,
    /// Firings of the paper's *processing* rules only.
    pub processing_firings: u64,
    /// Tuples sent to each destination processor (the channel row `i→*`).
    pub sent_tuples_to: Vec<u64>,
    /// Wire bytes sent to each destination (serialized batches).
    pub sent_bytes_to: Vec<u64>,
    /// Data messages sent (batches, not tuples).
    pub sent_messages: u64,
    /// Tuples received from other processors.
    pub received_tuples: u64,
    /// Wire bytes received.
    pub received_bytes: u64,
    /// Distinct `encode_batch` calls on the ship path — one per
    /// (fixpoint, channel relation), however many destinations the
    /// payload was multicast to.
    pub encode_calls: u64,
    /// Bytes those encodes produced. Each multicast payload is counted
    /// once here, unlike `sent_bytes_to` which counts per link.
    pub encoded_bytes: u64,
    /// Bytes the row-oriented wire format would have spent on the same
    /// batches — the reference of [`ParallelStats::compression_ratio`].
    pub encoded_raw_bytes: u64,
    /// Transport-level duplicate deliveries absorbed (same link sequence
    /// number seen twice). Zero under a reliable transport; positive only
    /// when a fault plan duplicates or re-delivers batches.
    pub duplicate_batches: u64,
    /// Messages retransmitted from this worker's replay logs during crash
    /// recovery (replayed batches plus compacted snapshots). Zero unless a
    /// peer was restarted. Counted separately from `sent_tuples_to` /
    /// `sent_messages`, which measure the algorithm's communication, not
    /// the transport's retransmissions.
    pub replayed_batches: u64,
    /// Stale deliveries discarded by the epoch filter during recovery
    /// (pre-crash envelopes, including stale termination tokens).
    pub stale_dropped: u64,
    /// Tuples shipped on delete-marked channels — the over-deletion cone
    /// of a DRed update round crossing the network. Zero in batch mode.
    pub retract_tuples_sent: u64,
    /// Tuples received in delete-marked batches (first deliveries only,
    /// matching `received_tuples` accounting). Zero in batch mode.
    pub retract_tuples_received: u64,
    /// Tuples contributed to the pooled global answer.
    pub pooled_tuples: u64,
    /// Time spent computing (local evaluation), excluding idle waits.
    pub busy: std::time::Duration,
    /// Channel tuples shipped per engine round, `(round, tuples)` —
    /// sparse (rounds shipping nothing are absent). Together with
    /// `eval.per_round` this is the §6 trade-off as a time series.
    pub sent_per_round: Vec<(u64, u64)>,
    /// Phase-attributed profile — `None` unless the run enabled
    /// [`crate::worker::WorkerConfig::profile`].
    pub profile: Option<crate::profile::WorkerProfile>,
}

impl WorkerReport {
    /// The same report with `pooled_tuples` filled in (pooling happens
    /// after the worker's own counters are frozen).
    pub fn with_pooled(mut self, pooled_tuples: u64) -> Self {
        self.pooled_tuples = pooled_tuples;
        self
    }
}

/// Aggregated statistics of one parallel execution.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    /// Per-worker reports, indexed by processor.
    pub workers: Vec<WorkerReport>,
    /// `channel_matrix[i][j]` = tuples sent from `i` to `j` during the
    /// recursive computation (final pooling not included).
    pub channel_matrix: Vec<Vec<u64>>,
    /// Worker restarts the supervisor performed (crash recovery). Zero on
    /// a fault-free run.
    pub restarts: u64,
    /// Worker reconnections the network coordinator accepted (TCP
    /// transport only; zero for in-process transports). Tracks `restarts`
    /// unless a replacement incarnation died before reconnecting.
    pub reconnects: u64,
    /// Framed wire bytes of worker-to-worker envelopes the network
    /// coordinator relayed — actual bytes on the wire, frame headers
    /// included (TCP transport only; zero for in-process transports).
    pub relay_bytes: u64,
    /// Wall-clock time of the parallel section.
    pub wall_time: Duration,
}

impl ParallelStats {
    /// Total tuples sent between distinct processors.
    pub fn total_tuples_sent(&self) -> u64 {
        self.channel_matrix
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .filter(move |(j, _)| *j != i)
                    .map(|(_, &v)| v)
            })
            .sum()
    }

    /// Total data messages (batches) sent between distinct processors.
    pub fn total_messages(&self) -> u64 {
        self.workers.iter().map(|w| w.sent_messages).sum()
    }

    /// Total wire bytes sent between distinct processors — the unit a
    /// cluster cost model charges for communication.
    pub fn total_bytes_sent(&self) -> u64 {
        self.workers.iter().flat_map(|w| w.sent_bytes_to.iter()).sum()
    }

    /// Total distinct wire encodings across workers (each multicast
    /// payload counted once).
    pub fn total_encode_calls(&self) -> u64 {
        self.workers.iter().map(|w| w.encode_calls).sum()
    }

    /// Total bytes the distinct encodings produced.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.encoded_bytes).sum()
    }

    /// How much smaller the columnar wire format is than the row-oriented
    /// one on this run's traffic: `raw / encoded`. 1.0 when nothing was
    /// encoded (e.g. a zero-communication run).
    pub fn compression_ratio(&self) -> f64 {
        let encoded: u64 = self.workers.iter().map(|w| w.encoded_bytes).sum();
        if encoded == 0 {
            return 1.0;
        }
        let raw: u64 = self.workers.iter().map(|w| w.encoded_raw_bytes).sum();
        raw as f64 / encoded as f64
    }

    /// Mean worker utilization: each worker's busy time over the longest
    /// busy time (1.0 = perfectly even, → 0 = one straggler).
    pub fn utilization(&self) -> f64 {
        let max = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .fold(0.0f64, f64::max);
        if max == 0.0 {
            return 1.0;
        }
        let mean = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum::<f64>()
            / self.workers.len() as f64;
        mean / max
    }

    /// Total processing-rule firings across processors — the left side of
    /// Theorems 2 and 6.
    pub fn total_processing_firings(&self) -> u64 {
        self.workers.iter().map(|w| w.processing_firings).sum()
    }

    /// Total firings of every rule (incl. init/send bookkeeping).
    pub fn total_firings(&self) -> u64 {
        self.workers.iter().map(|w| w.eval.firings).sum()
    }

    /// Total replay-log retransmissions during crash recovery.
    pub fn total_replayed_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.replayed_batches).sum()
    }

    /// Total stale (pre-recovery-epoch) deliveries discarded, including
    /// stale termination tokens.
    pub fn total_stale_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.stale_dropped).sum()
    }

    /// Total tuples shipped on delete-marked channels — the wire cost of
    /// a DRed update round's over-deletion phase. Zero in batch mode.
    pub fn total_retract_tuples_sent(&self) -> u64 {
        self.workers.iter().map(|w| w.retract_tuples_sent).sum()
    }

    /// True if no tuple ever crossed between two distinct processors —
    /// Example 1's and Theorem 3's zero-communication property.
    pub fn communication_free(&self) -> bool {
        self.total_tuples_sent() == 0
    }

    /// The set of used channels `(i, j)`, `i ≠ j` — compared against the
    /// compile-time network graph in the §5 experiments.
    pub fn used_channels(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, row) in self.channel_matrix.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j && v > 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// The result of a parallel execution: pooled relations plus statistics.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// Global answer per pooled predicate (the paper's final `t`).
    pub relations: FxHashMap<RelationId, Relation>,
    /// Measurements.
    pub stats: ParallelStats,
    /// The merged event journal — empty unless the run was traced
    /// ([`crate::coordinator::RuntimeConfig::trace`]).
    pub journal: Journal,
}

impl ExecutionOutcome {
    /// The pooled relation for `pred` (empty if never pooled).
    pub fn relation(&self, pred: RelationId) -> Relation {
        self.relations
            .get(&pred)
            .cloned()
            .unwrap_or_else(|| Relation::new(pred.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(processor: usize, sent: Vec<u64>) -> WorkerReport {
        WorkerReport {
            processor,
            eval: EvalStats::new(0),
            processing_firings: 10,
            sent_bytes_to: sent.iter().map(|t| t * 9).collect(),
            sent_tuples_to: sent,
            sent_messages: 1,
            received_tuples: 0,
            received_bytes: 0,
            encode_calls: 1,
            encoded_bytes: 9,
            encoded_raw_bytes: 90,
            duplicate_batches: 0,
            replayed_batches: 0,
            stale_dropped: 0,
            retract_tuples_sent: 0,
            retract_tuples_received: 0,
            pooled_tuples: 0,
            busy: Duration::ZERO,
            sent_per_round: Vec::new(),
            profile: None,
        }
    }

    #[test]
    fn matrix_excludes_self_channels() {
        let stats = ParallelStats {
            workers: vec![report(0, vec![5, 3]), report(1, vec![2, 7])],
            channel_matrix: vec![vec![5, 3], vec![2, 7]],
            restarts: 0,
            reconnects: 0,
            relay_bytes: 0,
            wall_time: Duration::ZERO,
        };
        assert_eq!(stats.total_tuples_sent(), 5);
        assert_eq!(stats.used_channels(), vec![(0, 1), (1, 0)]);
        assert!(!stats.communication_free());
        assert_eq!(stats.total_processing_firings(), 20);
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.total_bytes_sent(), (5 + 3 + 2 + 7) * 9);
        assert_eq!(stats.total_encode_calls(), 2);
        assert_eq!(stats.total_encoded_bytes(), 18);
        assert!((stats.compression_ratio() - 10.0).abs() < 1e-9);
        assert_eq!(stats.utilization(), 1.0, "all-zero busy counts as even");
    }

    #[test]
    fn zero_matrix_is_communication_free() {
        let stats = ParallelStats {
            workers: vec![report(0, vec![0, 0]), report(1, vec![0, 0])],
            channel_matrix: vec![vec![0, 0], vec![0, 0]],
            restarts: 0,
            reconnects: 0,
            relay_bytes: 0,
            wall_time: Duration::ZERO,
        };
        assert!(stats.communication_free());
        assert!(stats.used_channels().is_empty());
    }
}
