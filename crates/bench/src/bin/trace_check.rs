//! CI validator for Chrome traces exported by `pdatalog --trace-out`
//! and profile JSON exported by `pdatalog --profile-json`.
//!
//! ```text
//! trace_check <trace.json> [--workers N] [--require-sends]
//! trace_check --profile <profile.json> [--workers N] [--require-idle]
//! ```
//!
//! Exits 0 and prints a one-line summary if the file is structurally
//! sound (see [`gst_bench::tracecheck`]); exits 1 with the violation
//! otherwise. For traces, `--workers N` additionally requires worker
//! tracks `0..N`, each with a termination marker, and `--require-sends`
//! fails traces with no communication events. For profiles, `--workers
//! N` requires exactly N worker profiles and `--require-idle` fails
//! profiles where no worker ever waited (a parallel run that never
//! idles is a vacuous profile — the phase timers were not exercised).

use gst_bench::tracecheck::{check_chrome_trace, check_profile_json};

fn main() {
    std::process::exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("trace_check: {e}");
            1
        }
    });
}

fn run() -> Result<(), String> {
    const USAGE: &str = "usage: trace_check <trace.json> [--workers N] [--require-sends]\n   or: trace_check --profile <profile.json> [--workers N] [--require-idle]";
    let mut path = None;
    let mut profile_mode = false;
    let mut expect_workers = None;
    let mut require_sends = false;
    let mut require_idle = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => profile_mode = true,
            "--workers" => {
                let n = args.next().ok_or("--workers needs a count")?;
                expect_workers =
                    Some(n.parse::<usize>().map_err(|_| format!("bad worker count {n:?}"))?);
            }
            "--require-sends" => require_sends = true,
            "--require-idle" => require_idle = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let path = path.ok_or(USAGE)?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if profile_mode {
        if require_sends {
            return Err("--require-sends applies to traces, not profiles".into());
        }
        let summary = check_profile_json(&text)?;
        if let Some(n) = expect_workers {
            if summary.workers != n {
                return Err(format!(
                    "{path}: expected {n} worker profiles, found {}",
                    summary.workers
                ));
            }
        }
        if require_idle && summary.idle_total == 0 {
            return Err(format!(
                "{path}: no idle time in any worker (phase timers not exercised?)"
            ));
        }
        println!(
            "{path}: ok ({} worker profiles, {} critical-path rounds, idle total {})",
            summary.workers, summary.rounds, summary.idle_total
        );
        return Ok(());
    }
    if require_idle {
        return Err("--require-idle applies to profiles, not traces".into());
    }
    let summary = check_chrome_trace(&text, expect_workers, require_sends)?;
    println!(
        "{path}: ok ({} events, {} spans, {} worker tracks)",
        summary.events, summary.spans, summary.workers
    );
    Ok(())
}
