//! Plan execution.
//!
//! The executor walks a [`RulePlan`]'s steps depth-first, maintaining one
//! binding slot per rule variable. Scans read a prepared [`Access`]: a
//! row range of a relation's arena, or an index probe whose postings are
//! restricted to a row range. Because a [`Relation`] is insertion-ordered
//! and append-only, the semi-naive views are all contiguous ranges of the
//! same arena — `Full` is `rows[..]`, `Old` (`T_{i-1}`) is rows below the
//! delta watermark, and the delta is the suffix above it — so no minus
//! set is materialized or probed, and one index per (relation, columns)
//! serves all three views.
//!
//! The caller prepares one `Access` per scan step (the two-phase split
//! keeps index syncing, which needs `&mut`, out of the immutable
//! execution pass) and receives every successful ground substitution via
//! the `emit` callback; the return value is the firing count that the
//! paper's non-redundancy theorems (2 and 6) are stated over. Probe keys
//! are never allocated per probe: key values are hashed directly into
//! the index's bucket space via a scratch buffer reused for the whole
//! plan.

use std::sync::{Arc, Condvar, Mutex};

use gst_common::{Tuple, Value};
use gst_storage::{postings_in_range, HashIndex, Relation};

use crate::plan::{HeadTerm, KeySource, PlanStep, RulePlan, ScanStep};

/// How a scan step reads its relation this round.
#[derive(Debug, Clone, Copy)]
pub enum Access<'a> {
    /// Iterate arena rows `[start, end)`.
    Scan {
        /// The relation whose arena is scanned.
        rel: &'a Relation,
        /// First row (inclusive).
        start: u32,
        /// One past the last row.
        end: u32,
    },
    /// Probe a hash index on exactly the step's probe columns, keeping
    /// postings whose row id falls in `[start, end)`.
    Probe {
        /// The index over `rel`'s arena.
        index: &'a HashIndex,
        /// The indexed relation (verifies keys, resolves row ids).
        rel: &'a Relation,
        /// First row (inclusive).
        start: u32,
        /// One past the last row.
        end: u32,
    },
    /// The relation holds no tuples (or does not exist yet).
    Empty,
}

impl<'a> Access<'a> {
    /// Scan every row of `rel`.
    pub fn scan_all(rel: &'a Relation) -> Self {
        Access::Scan {
            rel,
            start: 0,
            end: rel.len() as u32,
        }
    }

    /// Scan rows `[start, end)` of `rel`.
    pub fn scan_range(rel: &'a Relation, start: u32, end: u32) -> Self {
        Access::Scan { rel, start, end }
    }

    /// Probe `index` over all of `rel`.
    pub fn probe_all(index: &'a HashIndex, rel: &'a Relation) -> Self {
        Access::Probe {
            index,
            rel,
            start: 0,
            end: rel.len() as u32,
        }
    }

    /// Probe `index`, keeping rows in `[start, end)` of `rel`.
    pub fn probe_range(index: &'a HashIndex, rel: &'a Relation, start: u32, end: u32) -> Self {
        Access::Probe {
            index,
            rel,
            start,
            end,
        }
    }
}

/// Run `plan` with one prepared access per step (`None` for filter steps),
/// invoking `emit` for each successful ground substitution's head tuple.
/// Returns the number of firings.
pub fn run_plan(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    emit: &mut impl FnMut(Tuple),
) -> u64 {
    debug_assert_eq!(accesses.len(), plan.steps.len());
    let mut bindings = vec![Value::Int(0); plan.slot_count];
    let mut head_buf: Vec<Value> = vec![Value::Int(0); plan.head_terms.len()];
    let mut key_buf: Vec<Value> = Vec::new();
    let mut firings = 0u64;
    descend(
        plan,
        accesses,
        0,
        &mut bindings,
        &mut head_buf,
        &mut key_buf,
        &mut firings,
        emit,
    );
    firings
}

/// Configuration of the morsel-parallel executor (ROADMAP item 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselConfig {
    /// Scoped worker threads to fan morsels across; `1` disables the
    /// parallel path entirely.
    pub threads: usize,
    /// Rows per morsel.
    pub chunk_rows: usize,
    /// Minimum leading-scan row count before chunking engages — below
    /// this, thread spawn overhead beats the parallelism.
    pub min_rows: usize,
}

impl Default for MorselConfig {
    fn default() -> Self {
        MorselConfig {
            threads: 1,
            chunk_rows: 256,
            min_rows: 512,
        }
    }
}

impl MorselConfig {
    /// The default thresholds with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        MorselConfig {
            threads: threads.max(1),
            ..MorselConfig::default()
        }
    }

    /// Whether the parallel path can ever engage.
    pub fn enabled(&self) -> bool {
        self.threads > 1
    }
}

/// A persistent pool of parked helper threads for the morsel executor.
///
/// Spawning OS threads per `run_plan_morsels` call (`thread::scope`)
/// costs on the order of 100µs per round — more than the join work of a
/// typical medium delta, which made `--morsels` a net loss on every
/// workload small enough to finish in milliseconds. The pool spawns its
/// helpers once per engine lifetime; between jobs they park on a condvar,
/// so an engaged morsel run pays only a mutex handoff.
///
/// The job is published as a type-erased pointer to the caller's borrowed
/// closure. [`MorselPool::run`] does not return until every helper has
/// finished the job, so the borrow outlives all uses — the same guarantee
/// `thread::scope` provides, enforced here by the `active` counter.
pub struct MorselPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals helpers: a new generation was published (or `quit`).
    start: Condvar,
    /// Signals the caller: a helper finished (active decremented).
    done: Condvar,
}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per published job so a helper never runs the same job
    /// twice and never misses one (condvar wakeups are advisory).
    generation: u64,
    /// Helpers still working on the current generation.
    active: usize,
    /// A helper caught a panic in the job; reported to the caller.
    poisoned: bool,
    quit: bool,
}

/// Type-erased pointer to the caller's borrowed job closure. Only
/// dereferenced by helpers between publication and the `active == 0`
/// handshake, during which [`MorselPool::run`] keeps the referent alive
/// by blocking.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (required by `run`'s signature) and its
// lifetime spans every dereference (see `Job` docs), so sharing the
// pointer with helper threads is sound.
unsafe impl Send for Job {}

impl MorselPool {
    /// Pool for `threads` total participants. The caller of
    /// [`MorselPool::run`] is one of them, so `threads - 1` helper
    /// threads are spawned.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                active: 0,
                poisoned: false,
                quit: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("morsel".into())
                    .spawn(move || helper_loop(&shared))
                    .expect("spawn morsel helper")
            })
            .collect();
        MorselPool { shared, handles }
    }

    /// Helper threads parked in this pool.
    pub fn helpers(&self) -> usize {
        self.handles.len()
    }

    /// Total participants (helpers plus the calling thread).
    pub fn participants(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f` once on the calling thread and once on every helper,
    /// returning after all of them have finished. `f` is expected to
    /// claim work items from shared state (e.g. an atomic counter) so
    /// the participants cooperate rather than duplicate.
    ///
    /// # Panics
    /// Propagates (as a fresh panic) any panic a helper caught while
    /// running `f`, mirroring `thread::scope`'s join behavior.
    pub fn run(&self, f: &(dyn Fn() + Sync)) {
        if self.handles.is_empty() {
            f();
            return;
        }
        // Erase the borrow: `Job`'s safety contract is discharged by the
        // `active == 0` wait below, which keeps `f` alive past the last
        // helper dereference.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none() && st.active == 0, "pool re-entered");
            st.job = Some(job);
            st.generation += 1;
            st.active = self.handles.len();
        }
        self.shared.start.notify_all();
        f(); // the caller is a participant, not just a coordinator
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        if st.poisoned {
            st.poisoned = false;
            drop(st);
            panic!("morsel helper panicked");
        }
    }
}

impl Drop for MorselPool {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.quit = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.quit {
                    return;
                }
                if st.generation != seen {
                    // A new generation implies a live job: `run` clears
                    // `job` only after every helper decremented `active`,
                    // which this helper has not yet done.
                    seen = st.generation;
                    break st.job.expect("published generation carries a job");
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        // SAFETY: `run` blocks until `active == 0`, so the closure behind
        // the pointer is alive for the duration of this call.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (*job.0)()
        }));
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if outcome.is_err() {
            st.poisoned = true;
        }
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Run `plan` with its leading scan chunked into fixed-size morsels fanned
/// across `pool` (or a one-shot scoped spawn when no pool is supplied), or
/// return `None` when the plan's shape does not admit chunking (no leading
/// arena scan, or one smaller than `cfg.min_rows`) — the caller then falls
/// back to [`run_plan`].
///
/// Determinism argument: the leading access iterates arena rows
/// `[start, end)` in row order, and every deeper step is a pure function
/// of the outer row, so the sequence of emissions under row `r` is
/// independent of what other rows emitted. Chunking `[start, end)` into
/// consecutive ranges and concatenating the per-chunk emission buffers in
/// chunk order therefore reproduces the sequential emission order
/// *bit-identically* — same tuples, same order, same firing count — which
/// keeps downstream arena insertion order, dedup tables, and semi-naive
/// deltas byte-equal to the single-threaded path. Returns
/// `(firings, morsels_executed)`.
pub fn run_plan_morsels(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    cfg: &MorselConfig,
    pool: Option<&MorselPool>,
    emit: &mut impl FnMut(Tuple),
) -> Option<(u64, u64)> {
    run_plan_morsels_profiled(plan, accesses, cfg, pool, None, emit)
}

/// [`run_plan_morsels`] with per-chunk service-time collection. When
/// `chunk_times` is supplied, each executed chunk appends one
/// `(wall_micros, tuples_emitted)` pair, in chunk order — the profiler
/// records whichever component matches its time mode (micros under wall
/// clocks, the deterministic tuple count under virtual ticks). Timing is
/// only measured when the collector is present, so the unprofiled path
/// pays nothing.
pub fn run_plan_morsels_profiled(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    cfg: &MorselConfig,
    pool: Option<&MorselPool>,
    chunk_times: Option<&mut Vec<(u64, u64)>>,
    emit: &mut impl FnMut(Tuple),
) -> Option<(u64, u64)> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    if !cfg.enabled() {
        return None;
    }
    if !matches!(plan.steps.first(), Some(PlanStep::Scan(_))) {
        return None;
    }
    let Some(Access::Scan { rel, start, end }) = accesses[0] else {
        return None;
    };
    let rows = end.saturating_sub(start) as usize;
    if rows < cfg.min_rows.max(2) {
        return None;
    }
    let chunk = (cfg.chunk_rows.max(1)) as u32;
    let nchunks = rows.div_ceil(chunk as usize);
    if nchunks < 2 {
        return None;
    }
    let threads = cfg.threads.min(nchunks);

    let timed = chunk_times.is_some();
    let next = AtomicUsize::new(0);
    #[allow(clippy::type_complexity)]
    let results: Mutex<Vec<(usize, u64, u64, Vec<Tuple>)>> =
        Mutex::new(Vec::with_capacity(nchunks));
    let work = || {
        let mut local: Vec<(usize, u64, u64, Vec<Tuple>)> = Vec::new();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let lo = start + (c as u32) * chunk;
            let hi = (lo + chunk).min(end);
            let mut sub = accesses.to_vec();
            sub[0] = Some(Access::Scan {
                rel,
                start: lo,
                end: hi,
            });
            let mut tuples = Vec::new();
            let t0 = timed.then(std::time::Instant::now);
            let firings = run_plan(plan, &sub, &mut |t| tuples.push(t));
            let micros = t0.map_or(0, |t| t.elapsed().as_micros() as u64);
            local.push((c, firings, micros, tuples));
        }
        if !local.is_empty() {
            results.lock().unwrap().append(&mut local);
        }
    };
    match pool {
        Some(pool) if pool.helpers() > 0 => pool.run(&work),
        _ => std::thread::scope(|s| {
            let work = &work;
            let handles: Vec<_> = (1..threads).map(|_| s.spawn(work)).collect();
            work();
            for h in handles {
                h.join().expect("morsel worker panicked");
            }
        }),
    }
    // Chunk-order concatenation = sequential row order (see above).
    let mut per_chunk = results.into_inner().unwrap();
    per_chunk.sort_unstable_by_key(|&(c, _, _, _)| c);
    let mut firings = 0u64;
    let mut collector = chunk_times;
    for (_, f, micros, tuples) in per_chunk {
        firings += f;
        if let Some(times) = collector.as_deref_mut() {
            times.push((micros, tuples.len() as u64));
        }
        for t in tuples {
            emit(t);
        }
    }
    Some((firings, nchunks as u64))
}

/// Resolve one probe-key source against current bindings.
#[inline]
fn resolve(src: &KeySource, bindings: &[Value]) -> Value {
    match src {
        KeySource::Slot(s) => bindings[*s],
        KeySource::Const(c) => *c,
    }
}

#[allow(clippy::too_many_arguments)] // internal hot path, flattened on purpose
fn descend(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    key_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut impl FnMut(Tuple),
) {
    if step_index == plan.steps.len() {
        *firings += 1;
        for (out, term) in head_buf.iter_mut().zip(&plan.head_terms) {
            *out = match term {
                HeadTerm::Slot(s) => bindings[*s],
                HeadTerm::Const(c) => *c,
            };
        }
        emit(Tuple::new(head_buf));
        return;
    }

    match &plan.steps[step_index] {
        PlanStep::Filter { constraint, slots } => {
            // Discriminating sequences are short: gather the bound values
            // on the stack — this runs once per candidate, and sending
            // rules filter every delta tuple for every destination.
            let mut stack = [Value::Int(0); 8];
            let heap: Vec<Value>;
            let values: &[Value] = if slots.len() <= stack.len() {
                for (out, &s) in stack.iter_mut().zip(slots.iter()) {
                    *out = bindings[s];
                }
                &stack[..slots.len()]
            } else {
                heap = slots.iter().map(|&s| bindings[s]).collect();
                &heap
            };
            if constraint.holds(values) {
                descend(
                    plan,
                    accesses,
                    step_index + 1,
                    bindings,
                    head_buf,
                    key_buf,
                    firings,
                    emit,
                );
            }
        }
        PlanStep::Scan(scan) => {
            let access = accesses[step_index]
                .as_ref()
                .expect("scan step must have a prepared access");
            match *access {
                Access::Empty => {}
                Access::Probe {
                    index,
                    rel,
                    start,
                    end,
                } => {
                    key_buf.clear();
                    for src in &scan.probe_values {
                        key_buf.push(resolve(src, bindings));
                    }
                    let postings = postings_in_range(index.probe(rel, key_buf), start, end);
                    let has_dead = rel.dead_count() != 0;
                    for &row in postings {
                        // Rows tombstoned after the index ingested them.
                        if has_dead && !rel.is_live(row) {
                            continue;
                        }
                        try_candidate(
                            plan,
                            accesses,
                            step_index,
                            scan,
                            rel.row(row),
                            false,
                            bindings,
                            head_buf,
                            key_buf,
                            firings,
                            emit,
                        );
                    }
                }
                Access::Scan { rel, start, end } => {
                    if rel.dead_count() == 0 {
                        // Hot path: delete-free arena, plain slice walk.
                        for t in &rel.rows()[start as usize..end as usize] {
                            try_candidate(
                                plan, accesses, step_index, scan, t, true, bindings, head_buf,
                                key_buf, firings, emit,
                            );
                        }
                    } else {
                        for row in start..end {
                            if !rel.is_live(row) {
                                continue;
                            }
                            try_candidate(
                                plan,
                                accesses,
                                step_index,
                                scan,
                                rel.row(row),
                                true,
                                bindings,
                                head_buf,
                                key_buf,
                                firings,
                                emit,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal hot path, flattened on purpose
fn try_candidate(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    scan: &ScanStep,
    tuple: &Tuple,
    check_probe: bool,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    key_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut impl FnMut(Tuple),
) {
    if check_probe {
        // Raw scans must verify probe columns that an index would have
        // guaranteed.
        for (col, src) in scan.probe_columns.iter().zip(&scan.probe_values) {
            if tuple.get(*col) != resolve(src, bindings) {
                return;
            }
        }
    }
    for (col, earlier) in &scan.intra_checks {
        if tuple.get(*col) != tuple.get(*earlier) {
            return;
        }
    }
    for (col, slot) in &scan.bindings {
        bindings[*slot] = tuple.get(*col);
    }
    descend(
        plan,
        accesses,
        step_index + 1,
        bindings,
        head_buf,
        key_buf,
        firings,
        emit,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile_rule;
    use gst_common::ituple;
    use gst_frontend::parse_program;

    fn edges() -> Relation {
        [ituple![1, 2], ituple![2, 3], ituple![3, 4], ituple![2, 5]]
            .into_iter()
            .collect()
    }

    fn collect(plan: &RulePlan, accesses: &[Option<Access<'_>>]) -> (u64, Vec<Tuple>) {
        let mut out = Vec::new();
        let n = run_plan(plan, accesses, &mut |t| out.push(t));
        out.sort();
        (n, out)
    }

    #[test]
    fn single_scan_copies_relation() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn two_way_join_with_index() {
        // t(X,Z) :- e(X,Y), e(Y,Z): paths of length 2.
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (n, out) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        assert_eq!(n, 3); // 1→2→3, 1→2→5, 2→3→4
        assert_eq!(out, vec![ituple![1, 3], ituple![1, 5], ituple![2, 4]]);
    }

    #[test]
    fn join_without_index_matches_index_join() {
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (_, with_idx) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        let (_, without) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::scan_all(&e))],
        );
        assert_eq!(with_idx, without);
    }

    #[test]
    fn constant_probe_filters() {
        let p = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 2);
        assert_eq!(out, vec![ituple![3], ituple![5]]);
    }

    #[test]
    fn intra_check_selects_loops() {
        let p = parse_program("t(X) :- e(X, X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e = edges();
        e.insert(ituple![7, 7]).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 1);
        assert_eq!(out, vec![ituple![7]]);
    }

    #[test]
    fn row_ranges_realize_old_and_delta_views() {
        // Arena order is insertion order: rows 0..2 are the "old" view,
        // rows 2..4 the "delta" — no minus set needed.
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges(); // rows: (1,2) (2,3) (3,4) (2,5)
        let (n, out) = collect(&plan, &[Some(Access::scan_range(&e, 2, 4))]);
        assert_eq!(n, 2);
        assert_eq!(out, vec![ituple![2, 5], ituple![3, 4]]);

        // Indexed variant: probe e(2, Y) restricted to the old rows
        // finds only (2,3); the full probe also finds (2,5).
        let p2 = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan2 = compile_rule(&p2.rules[0], 0, &|_| false, None).unwrap();
        let idx = HashIndex::build(&e, &[0]);
        let (n_old, out_old) = collect(&plan2, &[Some(Access::probe_range(&idx, &e, 0, 2))]);
        assert_eq!(n_old, 1);
        assert_eq!(out_old, vec![ituple![3]]);
        let (n_all, _) = collect(&plan2, &[Some(Access::probe_all(&idx, &e))]);
        assert_eq!(n_all, 2);
    }

    #[test]
    fn empty_access_yields_nothing() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::Empty)]);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let p = parse_program("t(X,Y) :- a(X), b(Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1], ituple![2]].into_iter().collect();
        let b: Relation = [ituple![10], ituple![20], ituple![30]].into_iter().collect();
        let (n, _) = collect(
            &plan,
            &[Some(Access::scan_all(&a)), Some(Access::scan_all(&b))],
        );
        assert_eq!(n, 6);
    }

    #[test]
    fn head_constants_are_materialized() {
        let p = parse_program("t(X, 99) :- a(X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1]].into_iter().collect();
        let (_, out) = collect(&plan, &[Some(Access::scan_all(&a))]);
        assert_eq!(out, vec![ituple![1, 99]]);
    }

    #[test]
    fn scans_and_probes_skip_tombstoned_rows() {
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e = edges();
        // Index first, then tombstone: postings still hold the dead row,
        // so both the scan arm and the probe arm must filter it.
        let idx = HashIndex::build(&e, &[0]);
        e.delete(&ituple![2, 3]);
        let (_, with_idx) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        assert_eq!(with_idx, vec![ituple![1, 5]]); // 1→2→3 and 2→3→4 are gone
        let (_, without) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::scan_all(&e))],
        );
        assert_eq!(with_idx, without);
    }

    #[test]
    fn morsels_match_sequential_bit_for_bit() {
        // Join large enough to split: t(X,Z) :- e(X,Y), e(Y,Z) on a chain.
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e: Relation = (0..500i64).map(|k| ituple![k, k + 1]).collect();
        let idx = HashIndex::build(&e, &[0]);
        let accesses = [Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))];
        let mut seq = Vec::new();
        let seq_firings = run_plan(&plan, &accesses, &mut |t| seq.push(t));
        for (threads, chunk) in [(2, 1), (3, 7), (4, 64), (2, 4096)] {
            let cfg = MorselConfig {
                threads,
                chunk_rows: chunk,
                min_rows: 2,
            };
            // Both fan-out mechanisms — one-shot scoped spawn and the
            // persistent pool, reused across geometries — must agree.
            let pool = MorselPool::new(threads);
            for pool in [None, Some(&pool)] {
                let mut par = Vec::new();
                match run_plan_morsels(&plan, &accesses, &cfg, pool, &mut |t| par.push(t)) {
                    Some((firings, morsels)) => {
                        assert_eq!(firings, seq_firings, "threads={threads} chunk={chunk}");
                        assert_eq!(par, seq, "emission order must be identical");
                        assert!(morsels >= 2);
                    }
                    None => {
                        // chunk ≥ rows leaves a single morsel: fallback is
                        // the correct answer, not an error.
                        assert_eq!(chunk, 4096);
                    }
                }
            }
        }
    }

    #[test]
    fn morsels_decline_unsplittable_shapes() {
        let p = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let cfg = MorselConfig {
            threads: 4,
            chunk_rows: 1,
            min_rows: 2,
        };
        let mut out = Vec::new();
        // Probe access at step 0: no row range to chunk.
        assert!(run_plan_morsels(
            &plan,
            &[Some(Access::probe_all(&idx, &e))],
            &cfg,
            None,
            &mut |t| out.push(t)
        )
        .is_none());
        // Disabled config never engages.
        assert!(run_plan_morsels(
            &plan,
            &[Some(Access::scan_all(&e))],
            &MorselConfig::default(),
            None,
            &mut |t| out.push(t)
        )
        .is_none());
        // Below the row threshold the sequential path wins.
        let small = MorselConfig {
            threads: 4,
            chunk_rows: 1,
            min_rows: 100,
        };
        assert!(run_plan_morsels(
            &plan,
            &[Some(Access::scan_all(&e))],
            &small,
            None,
            &mut |t| out.push(t)
        )
        .is_none());
    }

    #[test]
    fn morsel_pool_is_reusable_across_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Many back-to-back jobs through one pool: every participant must
        // run every job exactly once, and Drop must join cleanly.
        let pool = MorselPool::new(4);
        assert_eq!(pool.helpers(), 3);
        assert_eq!(pool.participants(), 4);
        let hits = AtomicUsize::new(0);
        for round in 1..=50usize {
            pool.run(&|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4 * round);
        }
        // A single-participant pool degenerates to a plain call.
        let solo = MorselPool::new(1);
        assert_eq!(solo.helpers(), 0);
        let ran = AtomicUsize::new(0);
        solo.run(&|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn morsels_respect_tombstones() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e: Relation = (0..300i64).map(|k| ituple![k, k + 1]).collect();
        for k in (0..300i64).step_by(3) {
            e.delete(&ituple![k, k + 1]);
        }
        let accesses = [Some(Access::scan_all(&e))];
        let mut seq = Vec::new();
        let seq_firings = run_plan(&plan, &accesses, &mut |t| seq.push(t));
        let cfg = MorselConfig {
            threads: 3,
            chunk_rows: 16,
            min_rows: 2,
        };
        let mut par = Vec::new();
        let pool = MorselPool::new(cfg.threads);
        let (firings, _) =
            run_plan_morsels(&plan, &accesses, &cfg, Some(&pool), &mut |t| par.push(t)).unwrap();
        assert_eq!(firings, seq_firings);
        assert_eq!(par, seq);
    }

    #[test]
    fn nested_probes_reuse_the_key_buffer() {
        // Three-way join forces probe-inside-probe recursion; the shared
        // key buffer must not corrupt outer probes.
        let p = parse_program("t(X,W) :- e(X,Y), e(Y,Z), e(Z,W).")
            .unwrap()
            .program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (n, out) = collect(
            &plan,
            &[
                Some(Access::scan_all(&e)),
                Some(Access::probe_all(&idx, &e)),
                Some(Access::probe_all(&idx, &e)),
            ],
        );
        assert_eq!(n, 1); // only 1→2→3→4 completes three hops
        assert_eq!(out, vec![ituple![1, 4]]);
    }
}
