//! Differential tests for the row-arena storage engine.
//!
//! The arena rewrite (insertion-ordered rows + row-id postings + range
//! deltas) must be observationally identical to the specification-level
//! semantics. These tests cross-check it against independent oracles over
//! the same seeded workload × scheme matrix the throughput harness times:
//!
//! 1. **Sequential**: semi-naive evaluation (arena deltas, shared
//!    full/Old/delta indexes) against naive evaluation (re-derives
//!    everything every round) — identical least models.
//! 2. **Parallel**: every §4 scheme × N pools exactly the sequential
//!    model, tuple for tuple.
//! 3. **Determinism**: repeated bulk-synchronous runs are bit-identical —
//!    sorted models, firing counts, shipped-tuple totals, and the full
//!    per-link channel matrix — and the async runtime ships the same
//!    tuple totals as the phased mode.

use gst_core::prelude::{example1_wolfson, example2_valduriez, example3_hash_partition};
use gst_core::schemes::CompiledScheme;
use gst_eval::{naive_eval, seminaive_eval};
use gst_frontend::LinearSirup;
use gst_runtime::RuntimeConfig;
use gst_storage::{round_robin_fragment, Relation};
use gst_workloads::{chain, grid, layered, linear_ancestor, random_digraph};

/// The seeded graph suite — smaller than the timing harness but the same
/// shapes, so a storage bug that is shape-dependent still surfaces.
fn workloads() -> Vec<(&'static str, Relation)> {
    vec![
        ("chain", chain(48)),
        ("grid", grid(8, 8)),
        ("random-7", random_digraph(60, 180, 7)),
        ("random-42", random_digraph(80, 200, 42)),
        ("layered", layered(4, 24, 3, 99)),
    ]
}

/// The three §4 schemes over `n` processors, exactly as the harness
/// builds them.
fn schemes(
    sirup: &LinearSirup,
    n: usize,
    data: &Relation,
    db: &gst_storage::Database,
) -> Vec<(&'static str, CompiledScheme)> {
    let frag = round_robin_fragment(data, n).unwrap();
    vec![
        ("ex1-zerocomm", example1_wolfson(sirup, n, db).unwrap()),
        ("qi-hash", example3_hash_partition(sirup, n, db).unwrap()),
        ("ex2-broadcast", example2_valduriez(sirup, frag, db).unwrap()),
    ]
}

/// Layer 1: the arena-backed semi-naive engine derives the same least
/// model as naive evaluation on every workload.
#[test]
fn seminaive_matches_naive_on_every_workload() {
    let fx = linear_ancestor();
    let anc = fx.output_id();
    for (name, data) in &workloads() {
        let db = fx.database(data);
        let semi = seminaive_eval(&fx.program, &db).unwrap();
        let naive = naive_eval(&fx.program, &db).unwrap();
        assert_eq!(
            semi.relation(anc).sorted(),
            naive.relation(anc).sorted(),
            "{name}: semi-naive and naive least models diverge"
        );
        assert!(!semi.relation(anc).is_empty(), "{name}: degenerate workload");
    }
}

/// Layer 2: every scheme × N pools a model bit-identical (as a sorted
/// tuple sequence) to the sequential oracle.
#[test]
fn every_scheme_pools_the_sequential_model() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();
    let config = RuntimeConfig::default();
    for (wname, data) in &workloads() {
        let db = fx.database(data);
        let oracle = seminaive_eval(&fx.program, &db).unwrap();
        let reference = oracle.relation(anc).sorted();
        for n in [1, 2, 4] {
            for (sname, scheme) in &schemes(&sirup, n, data, &db) {
                let outcome = scheme.execute(&config).unwrap();
                assert_eq!(
                    outcome.relation(anc).sorted(),
                    reference,
                    "{wname}/{sname}/N={n}: pooled model differs from the oracle"
                );
            }
        }
    }
}

/// Layer 3: the phased synchronous mode is deterministic down to firing
/// counts and the per-link channel matrix, and the async runtime ships
/// the same tuple totals and computes the same model.
#[test]
fn synchronous_runs_are_bit_identical_and_agree_with_async() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();
    let config = RuntimeConfig::default();
    let data = random_digraph(60, 180, 7);
    let db = fx.database(&data);
    for n in [2, 4] {
        for (sname, scheme) in &schemes(&sirup, n, &data, &db) {
            let a = scheme.run_synchronous().unwrap();
            let b = scheme.run_synchronous().unwrap();
            assert_eq!(
                a.relation(anc).sorted(),
                b.relation(anc).sorted(),
                "{sname}/N={n}: synchronous model not reproducible"
            );
            assert_eq!(
                a.stats.total_firings(),
                b.stats.total_firings(),
                "{sname}/N={n}: firing counts not reproducible"
            );
            assert_eq!(
                a.stats.channel_matrix, b.stats.channel_matrix,
                "{sname}/N={n}: channel matrix not reproducible"
            );

            let async_ = scheme.execute(&config).unwrap();
            assert_eq!(
                async_.relation(anc).sorted(),
                a.relation(anc).sorted(),
                "{sname}/N={n}: async and synchronous models diverge"
            );
            assert_eq!(
                async_.stats.total_tuples_sent(),
                a.stats.total_tuples_sent(),
                "{sname}/N={n}: delta shipping totals diverge between modes"
            );
        }
    }
}
