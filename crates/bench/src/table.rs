//! Minimal fixed-width text tables for harness output.

/// A text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(k, c)| format!("{:>width$}", c, width = widths[k]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        let _ = cols;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
