//! Property-based tests over the whole stack: random graphs, random
//! discriminating choices, random fragmentations — the invariants of the
//! paper must hold for *every* input, not just the corpus.

use std::sync::Arc;

use proptest::prelude::*;

use parallel_datalog::core::schemes::BaseDistribution;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{linear_ancestor, nonlinear_ancestor};

/// Random edge relations of bounded size over a small node domain (small
/// domains force collisions, cycles, diamonds — the hard cases).
fn arb_edges() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..12, 0i64..12), 0..40).prop_map(|pairs| {
        // Build explicitly so the empty case keeps arity 2.
        let mut rel = Relation::new(2);
        for (a, b) in pairs {
            rel.insert_unchecked(ituple![a, b]);
        }
        rel
    })
}

fn var(p: &Program, name: &str) -> Variable {
    Variable(p.interner.get(name).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Semi-naive and naive evaluation agree on every graph (the
    /// sequential engine's core invariant).
    #[test]
    fn seminaive_equals_naive(edges in arb_edges()) {
        let fx = linear_ancestor();
        let db = fx.database(&edges);
        let a = seminaive_eval(&fx.program, &db).unwrap();
        let b = naive_eval(&fx.program, &db).unwrap();
        prop_assert!(a.relation(fx.output_id()).set_eq(&b.relation(fx.output_id())));
        // Semi-naive never fires more often than naive.
        prop_assert!(a.stats.firings <= b.stats.firings);
    }

    /// Theorem 1 + Theorem 2 for the §3 scheme under random graphs,
    /// processor counts and hash seeds.
    #[test]
    fn non_redundant_scheme_invariants(
        edges in arb_edges(),
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let fx = linear_ancestor();
        let sirup = LinearSirup::from_program(&fx.program).unwrap();
        let db = fx.database(&edges);
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, seed));
        let cfg = NonRedundantConfig {
            v_r: vec![var(&fx.program, "Z")],
            v_e: vec![var(&fx.program, "X")],
            h: h.clone(),
            h_prime: h,
            base: BaseDistribution::MinimalFragments,
        };
        let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        prop_assert!(outcome.relation(fx.output_id()).set_eq(&seq.relation(fx.output_id())));
        prop_assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    /// Theorem 3: the Example-1 construction never communicates, for any
    /// graph and processor count.
    #[test]
    fn zero_comm_choice_never_communicates(
        edges in arb_edges(),
        n in 1usize..6,
    ) {
        let fx = linear_ancestor();
        let sirup = LinearSirup::from_program(&fx.program).unwrap();
        let db = fx.database(&edges);
        let outcome = example1_wolfson(&sirup, n, &db).unwrap().run().unwrap();
        prop_assert!(outcome.stats.communication_free());
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        prop_assert!(outcome.relation(fx.output_id()).set_eq(&seq.relation(fx.output_id())));
    }

    /// Theorems 5/6 for the §7 scheme on the non-linear program.
    #[test]
    fn general_scheme_invariants(
        edges in arb_edges(),
        n in 1usize..4,
        seed in 0u64..1000,
    ) {
        let fx = nonlinear_ancestor();
        let db = fx.database(&edges);
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, seed));
        let choices = vec![
            RuleChoice { v: vec![var(&fx.program, "Y")], h: h.clone() },
            RuleChoice { v: vec![var(&fx.program, "Z")], h },
        ];
        let scheme = rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        prop_assert!(outcome.relation(fx.output_id()).set_eq(&seq.relation(fx.output_id())));
        prop_assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    /// Fragmentations partition: disjoint, covering, owner-consistent.
    #[test]
    fn fragmentation_invariants(edges in arb_edges(), n in 1usize..6, col in 0usize..2) {
        let frag = hash_fragment(&edges, &[col], n).unwrap();
        prop_assert!(frag.covers(&edges));
        prop_assert_eq!(frag.sizes().iter().sum::<usize>(), edges.len());
        for t in edges.iter() {
            let owner = frag.owner_of(t).unwrap();
            prop_assert!(frag.fragment(owner).contains(t));
            for i in 0..n {
                if i != owner {
                    prop_assert!(!frag.fragment(i).contains(t));
                }
            }
        }
    }

    /// Comparison built-ins agree with a post-filter: `up` (edges with
    /// X < Y, closed transitively through monotone hops) is exactly the
    /// closure of the <-filtered edge set.
    #[test]
    fn comparisons_equal_prefiltered_closure(edges in arb_edges()) {
        let unit = parse_program(
            "up(X,Y) :- e(X,Y), X < Y.\n\
             up(X,Y) :- e(X,Z), X < Z, up(Z,Y).",
        ).unwrap();
        let e_id = (unit.program.interner.get("e").unwrap(), 2);
        let mut db = Database::new(unit.program.interner.clone());
        db.put_relation(e_id, edges.clone()).unwrap();
        let with_builtin = seminaive_eval(&unit.program, &db).unwrap();

        // Oracle: filter the edges first, then run plain TC.
        let filtered: Relation = edges
            .iter()
            .filter(|t| t.get(0) < t.get(1))
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
            .fold(Relation::new(2), |mut r, t| {
                r.insert_unchecked(t);
                r
            });
        let fx = linear_ancestor();
        let db2 = fx.database(&filtered);
        let oracle = seminaive_eval(&fx.program, &db2).unwrap();

        let up = (unit.program.interner.get("up").unwrap(), 2);
        prop_assert!(with_builtin.relation(up).set_eq(&oracle.relation(fx.output_id())));
    }

    /// The parser and pretty-printer round-trip rule structure.
    #[test]
    fn parser_pretty_round_trip(
        arity in 1usize..4,
        body_len in 1usize..4,
    ) {
        // Build a random-but-safe rule: head vars all drawn from body.
        let head_args: Vec<String> = (0..arity).map(|k| format!("V{k}")).collect();
        let body: Vec<String> = (0..body_len)
            .map(|b| format!("e{b}({})", head_args.join(", ")))
            .collect();
        let src = format!("t({}) :- {}.", head_args.join(", "), body.join(", "));
        let first = parse_program(&src).unwrap();
        let rendered = parallel_datalog::frontend::pretty::program(&first.program);
        let second = parse_program(&rendered).unwrap();
        prop_assert_eq!(
            parallel_datalog::frontend::pretty::program(&second.program),
            rendered
        );
    }
}

/// Non-proptest guard: the property suite's fixtures stay valid.
#[test]
fn fixtures_are_wellformed() {
    let fx = linear_ancestor();
    assert!(LinearSirup::from_program(&fx.program).is_ok());
    assert!(ProgramAnalysis::new(&fx.program).is_ok());
    let fx = nonlinear_ancestor();
    assert!(ProgramAnalysis::new(&fx.program).is_ok());
}
