//! Discriminating functions (paper §3).
//!
//! A discriminating function maps ground instances of a *discriminating
//! sequence of variables* to processors:
//!
//! ```text
//! h : set of ground instances of v(r) → P
//! ```
//!
//! Every concrete function here is deterministic and free of per-instance
//! state, so all workers of a run — and repeated runs — agree on every
//! assignment. The implementations cover each function the paper uses:
//!
//! * [`HashMod`] — an arbitrary hash partition (the "discriminating
//!   functions based on hashing" of §3, and Examples 1/3);
//! * [`SymmetricHashMod`] — order-invariant hashing, the function family
//!   that realizes Theorem 3's zero-communication choice for cyclic
//!   dataflow graphs (the cycle permutes the sequence, so `h` must not
//!   care about order);
//! * [`BitVector`] — `h(a₁…a_L) = (g(a₁), …, g(a_L))` over a bit-valued
//!   `g`, the four-processor function of Example 6;
//! * [`Linear`] — `h(a₁…a_L) = Σ c_k · g(a_k)`, the linear function of
//!   Example 7 whose network graph is derived by solving linear systems;
//! * [`FragmentOwner`] — `h(t) = i ⇔ t ∈ fragmentⁱ`, Example 2's
//!   function; **not locally evaluable** (processor `i` cannot test
//!   membership in a fragment it does not store), which is exactly why
//!   Example 2 broadcasts;
//! * [`Constant`] — `h_i(x) = i`, the keep-everything-local choice that
//!   §6 shows degenerates to the redundant, communication-free scheme of
//!   [Wolfson 88];
//! * [`Mixed`] — keep a tuple local with probability `α` (deterministic
//!   per tuple), else defer to a base function: the knob that sweeps §6's
//!   redundancy/communication spectrum.

use std::sync::Arc;

use gst_common::fxhash::hash_one;
use gst_common::{Interner, Value};
use gst_frontend::{Constraint, Variable};
use gst_storage::Fragmentation;

/// A discriminating function: ground tuple → processor.
pub trait Discriminator: Send + Sync {
    /// Number of processors in the range `P = {0, …, processors()-1}`.
    fn processors(&self) -> usize;

    /// Assign a ground instance to a processor.
    fn assign(&self, ground: &[Value]) -> usize;

    /// Whether a processor can evaluate this function from a tuple alone.
    /// When `false`, sending rules cannot carry the `h(v(r)) = j`
    /// condition and the scheme falls back to broadcasting (paper §4,
    /// Example 2: "the second conjunct ... cannot be verified at
    /// processor i. Hence, all tuples ... are communicated").
    fn locally_evaluable(&self) -> bool {
        true
    }

    /// Human-readable name for reports.
    fn describe(&self) -> String;
}

/// Shared handle to a discriminating function.
pub type DiscriminatorRef = Arc<dyn Discriminator>;

/// The bit-valued helper `g : constants → {0, 1}` of Examples 6 and 7.
///
/// "Let g be any arbitrary function on the domain ... with range {0,1}" —
/// we use one hash bit, parameterized by `seed` so experiments can draw
/// several independent `g`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFn {
    /// Seed mixed into the hash, selecting one function from the family.
    pub seed: u64,
}

impl BitFn {
    /// The function `g` with the given seed.
    pub fn new(seed: u64) -> Self {
        BitFn { seed }
    }

    /// Evaluate `g(value) ∈ {0, 1}`.
    pub fn bit(&self, value: Value) -> u8 {
        // Take the top bit: FxHash's final multiply mixes high bits far
        // better than low ones (the low bit survives odd multiplication).
        (hash_one(&(self.seed, value)) >> 63) as u8
    }
}

/// `h(ā) = hash(ā) mod n` — an arbitrary hash partition.
#[derive(Debug, Clone)]
pub struct HashMod {
    n: usize,
    seed: u64,
}

impl HashMod {
    /// A hash partition over `n` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one processor");
        HashMod { n, seed }
    }
}

impl Discriminator for HashMod {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, ground: &[Value]) -> usize {
        (hash_one(&(self.seed, ground)) % self.n as u64) as usize
    }

    fn describe(&self) -> String {
        format!("hash mod {}", self.n)
    }
}

/// Order-invariant hash partition: `h(ā) = (Σ hash(a_k)) mod n`.
///
/// Realizes Theorem 3: when the discriminating positions lie on a cycle of
/// the dataflow graph, the multiset of values at those positions is
/// preserved from consumed tuple to produced tuple, so a symmetric `h`
/// keeps every derivation on one processor.
#[derive(Debug, Clone)]
pub struct SymmetricHashMod {
    n: usize,
    seed: u64,
}

impl SymmetricHashMod {
    /// A symmetric hash partition over `n` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        SymmetricHashMod { n, seed }
    }
}

impl Discriminator for SymmetricHashMod {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, ground: &[Value]) -> usize {
        let sum: u64 = ground
            .iter()
            .map(|v| hash_one(&(self.seed, v)))
            .fold(0u64, u64::wrapping_add);
        (sum % self.n as u64) as usize
    }

    fn describe(&self) -> String {
        format!("symmetric hash mod {}", self.n)
    }
}

/// Example 6's function: `h(a₁…a_L) = (g(a₁), …, g(a_L))`, a bit string
/// read big-endian as the processor index; `2^L` processors.
#[derive(Debug, Clone)]
pub struct BitVector {
    g: BitFn,
    len: usize,
}

impl BitVector {
    /// Bit-vector function over sequences of length `len`.
    pub fn new(g: BitFn, len: usize) -> Self {
        assert!((1..=16).contains(&len), "2^len processors must stay sane");
        BitVector { g, len }
    }

    /// Render a processor index as the paper's bit-string, e.g. `(01)`.
    pub fn processor_name(&self, index: usize) -> String {
        let mut s = String::with_capacity(self.len + 2);
        s.push('(');
        for k in 0..self.len {
            let bit = (index >> (self.len - 1 - k)) & 1;
            s.push(if bit == 1 { '1' } else { '0' });
        }
        s.push(')');
        s
    }
}

impl Discriminator for BitVector {
    fn processors(&self) -> usize {
        1 << self.len
    }

    fn assign(&self, ground: &[Value]) -> usize {
        debug_assert_eq!(ground.len(), self.len);
        ground
            .iter()
            .fold(0usize, |acc, &v| (acc << 1) | self.g.bit(v) as usize)
    }

    fn describe(&self) -> String {
        format!("(g(a1),…,g(a{})) bit vector", self.len)
    }
}

/// Example 7's function: `h(a₁…a_L) = Σ c_k · g(a_k)`; the processor set
/// is the set of achievable sums (e.g. `{0, 1, −1, 2}` for `+1 −1 +1`),
/// indexed in sorted order.
#[derive(Debug, Clone)]
pub struct Linear {
    g: BitFn,
    coefficients: Vec<i64>,
    /// Sorted distinct achievable values; index = processor id.
    values: Vec<i64>,
}

impl Linear {
    /// Linear function with the given ±1 (or any integer) coefficients.
    pub fn new(g: BitFn, coefficients: Vec<i64>) -> Self {
        assert!(!coefficients.is_empty() && coefficients.len() <= 20);
        let values = achievable_sums(&coefficients);
        Linear {
            g,
            coefficients,
            values,
        }
    }

    /// The achievable sums, sorted: the paper's processor set `P`.
    pub fn processor_values(&self) -> &[i64] {
        &self.values
    }

    /// Processor index of an achievable sum.
    pub fn processor_of_value(&self, value: i64) -> Option<usize> {
        self.values.binary_search(&value).ok()
    }

    /// The coefficients `c_k`.
    pub fn coefficients(&self) -> &[i64] {
        &self.coefficients
    }
}

/// All sums `Σ c_k·b_k` over `b ∈ {0,1}^L`, sorted and deduplicated.
pub fn achievable_sums(coefficients: &[i64]) -> Vec<i64> {
    let mut values = vec![0i64];
    for &c in coefficients {
        let mut next = Vec::with_capacity(values.len() * 2);
        for &v in &values {
            next.push(v);
            next.push(v + c);
        }
        next.sort_unstable();
        next.dedup();
        values = next;
    }
    values
}

impl Discriminator for Linear {
    fn processors(&self) -> usize {
        self.values.len()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        debug_assert_eq!(ground.len(), self.coefficients.len());
        let sum: i64 = ground
            .iter()
            .zip(&self.coefficients)
            .map(|(&v, &c)| c * self.g.bit(v) as i64)
            .sum();
        self.processor_of_value(sum)
            .expect("every bit assignment yields an achievable sum")
    }

    fn describe(&self) -> String {
        let terms: Vec<String> = self
            .coefficients
            .iter()
            .enumerate()
            .map(|(k, c)| match c {
                1 => format!("+g(a{})", k + 1),
                -1 => format!("-g(a{})", k + 1),
                c => format!("{:+}·g(a{})", c, k + 1),
            })
            .collect();
        format!("linear {}", terms.join(" "))
    }
}

/// Example 2's function: `h(t) = i ⇔ t ∈ fragmentⁱ`. Only the site
/// storing the fragment can evaluate membership, so this function is not
/// locally evaluable and forces broadcasting.
#[derive(Debug, Clone)]
pub struct FragmentOwner {
    fragmentation: Arc<Fragmentation>,
}

impl FragmentOwner {
    /// Ownership function of an existing fragmentation.
    pub fn new(fragmentation: Arc<Fragmentation>) -> Self {
        FragmentOwner { fragmentation }
    }
}

impl Discriminator for FragmentOwner {
    fn processors(&self) -> usize {
        self.fragmentation.len()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        // Tuples outside every fragment can never fire a processing rule;
        // parking them on processor 0 is safe and keeps `assign` total.
        self.fragmentation
            .owner_of(&gst_common::Tuple::new(ground))
            .unwrap_or(0)
    }

    fn locally_evaluable(&self) -> bool {
        false
    }

    fn describe(&self) -> String {
        format!("fragment owner over {} fragments", self.fragmentation.len())
    }
}

/// `h_i(x) = i` — route everything to a fixed processor (§6: with every
/// processor using its own constant, no tuple ever leaves its producer).
#[derive(Debug, Clone)]
pub struct Constant {
    n: usize,
    target: usize,
}

impl Constant {
    /// The constant function onto `target` out of `n` processors.
    pub fn new(n: usize, target: usize) -> Self {
        assert!(target < n);
        Constant { n, target }
    }
}

impl Discriminator for Constant {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, _ground: &[Value]) -> usize {
        self.target
    }

    fn describe(&self) -> String {
        format!("constant {}", self.target)
    }
}

/// §6 spectrum knob: keep a tuple on `local` with probability `alpha`
/// (decided by a deterministic hash of the tuple), otherwise defer to
/// `base`. `alpha = 0` reproduces the non-redundant scheme, `alpha = 1`
/// the redundant zero-communication scheme.
#[derive(Clone)]
pub struct Mixed {
    local: usize,
    base: DiscriminatorRef,
    alpha: f64,
    seed: u64,
}

impl Mixed {
    /// Keep-local mix for processor `local`.
    pub fn new(local: usize, base: DiscriminatorRef, alpha: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        assert!(local < base.processors());
        Mixed {
            local,
            base,
            alpha,
            seed,
        }
    }
}

impl Discriminator for Mixed {
    fn processors(&self) -> usize {
        self.base.processors()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        let draw = hash_one(&(self.seed, ground)) as f64 / u64::MAX as f64;
        if draw < self.alpha {
            self.local
        } else {
            self.base.assign(ground)
        }
    }

    fn describe(&self) -> String {
        format!(
            "keep-local(p={}, α={:.2}) else {}",
            self.local,
            self.alpha,
            self.base.describe()
        )
    }
}

/// The constraint literal `h(v) = expect` that the rewriting schemes
/// insert into rule bodies.
pub struct DiscConstraint {
    /// The discriminating sequence `v`.
    pub vars: Vec<Variable>,
    /// The function `h`.
    pub disc: DiscriminatorRef,
    /// The processor the instance must hash to.
    pub expect: usize,
}

impl DiscConstraint {
    /// Build the constraint `disc(vars) = expect` as a shareable literal.
    pub fn literal(
        vars: Vec<Variable>,
        disc: DiscriminatorRef,
        expect: usize,
    ) -> gst_frontend::ast::ConstraintRef {
        Arc::new(DiscConstraint { vars, disc, expect })
    }
}

impl Constraint for DiscConstraint {
    fn variables(&self) -> &[Variable] {
        &self.vars
    }

    fn holds(&self, bound: &[Value]) -> bool {
        self.disc.assign(bound) == self.expect
    }

    fn describe(&self, interner: &Interner) -> String {
        let names: Vec<String> = self.vars.iter().map(|v| v.name(interner)).collect();
        format!(
            "h({}) = {} [{}]",
            names.join(", "),
            self.expect,
            self.disc.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;
    use gst_storage::{hash_fragment, Relation};

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn hash_mod_is_deterministic_and_in_range() {
        let h = HashMod::new(4, 1);
        for k in 0..100i64 {
            let a = h.assign(&vals(&[k, k + 1]));
            assert!(a < 4);
            assert_eq!(a, h.assign(&vals(&[k, k + 1])));
        }
    }

    #[test]
    fn hash_mod_spreads() {
        let h = HashMod::new(4, 1);
        let mut hit = [false; 4];
        for k in 0..64i64 {
            hit[h.assign(&vals(&[k]))] = true;
        }
        assert!(hit.iter().all(|&b| b), "all processors used");
    }

    #[test]
    fn symmetric_is_order_invariant() {
        let h = SymmetricHashMod::new(8, 3);
        for k in 0..50i64 {
            assert_eq!(h.assign(&vals(&[k, k + 7])), h.assign(&vals(&[k + 7, k])));
        }
    }

    #[test]
    fn plain_hash_is_order_sensitive_somewhere() {
        let h = HashMod::new(8, 3);
        let sensitive = (0..100i64)
            .any(|k| h.assign(&vals(&[k, k + 1])) != h.assign(&vals(&[k + 1, k])));
        assert!(sensitive);
    }

    #[test]
    fn bit_vector_composes_g() {
        let g = BitFn::new(5);
        let h = BitVector::new(g, 2);
        assert_eq!(h.processors(), 4);
        for a in 0..10i64 {
            for b in 0..10i64 {
                let expect =
                    ((g.bit(Value::Int(a)) as usize) << 1) | g.bit(Value::Int(b)) as usize;
                assert_eq!(h.assign(&vals(&[a, b])), expect);
            }
        }
        assert_eq!(h.processor_name(0b10), "(10)");
        assert_eq!(h.processor_name(0), "(00)");
    }

    #[test]
    fn linear_matches_example7() {
        // h = g(a1) - g(a2) + g(a3): P = {-1, 0, 1, 2} (sorted).
        let h = Linear::new(BitFn::new(9), vec![1, -1, 1]);
        assert_eq!(h.processor_values(), &[-1, 0, 1, 2]);
        assert_eq!(h.processors(), 4);
        // Every assignment lands on an achievable value.
        for a in 0..20i64 {
            let p = h.assign(&vals(&[a, a + 1, a + 2]));
            assert!(p < 4);
        }
        assert_eq!(h.processor_of_value(2), Some(3));
        assert_eq!(h.processor_of_value(5), None);
    }

    #[test]
    fn achievable_sums_enumerates() {
        assert_eq!(achievable_sums(&[1, 1]), vec![0, 1, 2]);
        assert_eq!(achievable_sums(&[1, -1]), vec![-1, 0, 1]);
        assert_eq!(achievable_sums(&[2]), vec![0, 2]);
    }

    #[test]
    fn fragment_owner_matches_fragments() {
        let rel: Relation = (0..40i64).map(|k| ituple![k, k + 1]).collect();
        let frag = Arc::new(hash_fragment(&rel, &[0], 4).unwrap());
        let h = FragmentOwner::new(frag.clone());
        assert!(!h.locally_evaluable());
        for t in rel.iter() {
            let owner = h.assign(t.as_slice());
            assert!(frag.fragment(owner).contains(t));
        }
        // Unknown tuples park on 0.
        assert_eq!(h.assign(&vals(&[999, 999])), 0);
    }

    #[test]
    fn constant_routes_to_target() {
        let h = Constant::new(5, 3);
        assert_eq!(h.assign(&vals(&[1])), 3);
        assert_eq!(h.assign(&vals(&[99, 4])), 3);
        assert_eq!(h.processors(), 5);
    }

    #[test]
    fn mixed_extremes_degenerate() {
        let base: DiscriminatorRef = Arc::new(HashMod::new(4, 2));
        let all_local = Mixed::new(1, base.clone(), 1.0, 7);
        let never_local = Mixed::new(1, base.clone(), 0.0, 7);
        for k in 0..50i64 {
            let v = vals(&[k, k * 3]);
            assert_eq!(all_local.assign(&v), 1);
            assert_eq!(never_local.assign(&v), base.assign(&v));
        }
    }

    #[test]
    fn mixed_midpoint_is_a_true_mix() {
        let base: DiscriminatorRef = Arc::new(HashMod::new(4, 2));
        let mixed = Mixed::new(1, base.clone(), 0.5, 7);
        let mut kept = 0;
        let mut routed = 0;
        for k in 0..400i64 {
            let v = vals(&[k]);
            let a = mixed.assign(&v);
            if a == base.assign(&v) && a != 1 {
                routed += 1;
            } else if a == 1 {
                kept += 1;
            }
        }
        assert!(kept > 100, "keeps a fair share: {kept}");
        assert!(routed > 100, "routes a fair share: {routed}");
    }

    #[test]
    fn constraint_literal_evaluates() {
        let interner = Interner::new();
        let x = Variable(interner.intern("X"));
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 0));
        let expect = h.assign(&vals(&[42]));
        let c = DiscConstraint::literal(vec![x], h, expect);
        assert!(c.holds(&vals(&[42])));
        let miss = (0..10i64)
            .map(Value::Int)
            .any(|v| !c.holds(&[v]));
        assert!(miss, "some value hashes elsewhere");
        assert!(c.describe(&interner).contains("h(X)"));
    }

    #[test]
    fn bitfn_seeds_differ() {
        let g1 = BitFn::new(1);
        let g2 = BitFn::new(2);
        let differs = (0..64i64).any(|k| g1.bit(Value::Int(k)) != g2.bit(Value::Int(k)));
        assert!(differs);
    }
}
