//! Pretty-printing of AST nodes back to the surface syntax.
//!
//! Output parses back to an equal program (round-trip property tested in
//! the crate's integration suite) as long as the program contains no
//! constraint literals; constraints render via [`crate::ast::Constraint::describe`]
//! inside `{...}` braces and are for human consumption only.

use gst_common::{Interner, Value};

use crate::ast::{Atom, Literal, Program, Rule, Term};

/// Render a term. Symbolic constants that are not identifier-shaped
/// (spaces, capitals, punctuation) are quoted so output re-parses.
pub fn term(t: &Term, interner: &Interner) -> String {
    match t {
        Term::Var(v) => v.name(interner),
        Term::Const(Value::Sym(s)) => {
            let name = interner.resolve(*s);
            if is_plain_symbol(&name) {
                name.to_string()
            } else {
                quote(&name)
            }
        }
        Term::Const(c) => c.display(interner),
    }
}

/// True when `name` lexes back as a lowercase identifier.
fn is_plain_symbol(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() && c.is_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_')
}

/// Quote and escape a symbol for the surface syntax.
fn quote(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an atom, e.g. `anc(X, Y)`.
pub fn atom(a: &Atom, interner: &Interner) -> String {
    let name = interner.resolve(a.predicate);
    if a.terms.is_empty() {
        name.to_string()
    } else {
        let args: Vec<String> = a.terms.iter().map(|t| term(t, interner)).collect();
        format!("{}({})", name, args.join(", "))
    }
}

/// Render a body literal. Comparison constraints re-parse; scheme
/// constraints (`h(v) = i`) render inside `{…}` braces for humans only.
pub fn literal(l: &Literal, interner: &Interner) -> String {
    match l {
        Literal::Atom(a) => atom(a, interner),
        Literal::Constraint(c) => {
            let rendered = c.describe(interner);
            if rendered.starts_with("h(") {
                format!("{{{rendered}}}")
            } else {
                rendered
            }
        }
    }
}

/// Render a rule, e.g. `anc(X, Y) :- par(X, Z), anc(Z, Y).`.
pub fn rule(r: &Rule, interner: &Interner) -> String {
    if r.body.is_empty() {
        return format!("{}.", atom(&r.head, interner));
    }
    let body: Vec<String> = r.body.iter().map(|l| literal(l, interner)).collect();
    format!("{} :- {}.", atom(&r.head, interner), body.join(", "))
}

/// Render a whole program, one rule per line.
pub fn program(p: &Program) -> String {
    p.rules
        .iter()
        .map(|r| rule(r, &p.interner))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn renders_ancestor() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        )
        .unwrap();
        assert_eq!(
            program(&unit.program),
            "anc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y)."
        );
    }

    #[test]
    fn renders_constants() {
        let unit = parse_program("p(X) :- q(X, alice, 42).").unwrap();
        assert_eq!(program(&unit.program), "p(X) :- q(X, alice, 42).");
    }

    #[test]
    fn renders_zero_arity() {
        let unit = parse_program("go :- ready.").unwrap();
        assert_eq!(program(&unit.program), "go :- ready.");
    }

    #[test]
    fn quotes_non_identifier_symbols() {
        let unit = parse_program(r#"p(X) :- q(X, "John Smith", alice)."#).unwrap();
        assert_eq!(
            program(&unit.program),
            r#"p(X) :- q(X, "John Smith", alice)."#
        );
    }

    #[test]
    fn string_round_trip_with_escapes() {
        let src = "p(X) :- q(X, \"a\\\"b\\nc\").";
        let first = parse_program(src).unwrap();
        let rendered = program(&first.program);
        let second = parse_program(&rendered).unwrap();
        assert_eq!(program(&second.program), rendered);
    }

    #[test]
    fn round_trips_through_parser() {
        let src = "t(X, Y) :- s(X, Y).\nt(X, Y) :- t(X, Z), e(Z, Y, -3).";
        let first = parse_program(src).unwrap();
        let rendered = program(&first.program);
        let second = parse_program(&rendered).unwrap();
        assert_eq!(program(&second.program), rendered);
        assert_eq!(first.program.rules.len(), second.program.rules.len());
    }
}
