//! The §7 general scheme `T_i`: parallelizing **any** Datalog program —
//! non-linear rules, multiple recursive rules, mutual recursion.
//!
//! Every rule `r_k : A :- B, …, C` gets its own discriminating sequence
//! `v(r_k)` and function `h_k`. Processor `i` executes, per rule,
//!
//! ```text
//! processing:       A_out^i :- B_in^i, …, C_in^i, h_k(v(r_k)) = i
//! sending (∀ derived C in r_k, ∀j):  C_ij :- C_out^i, h_k(v(r_k)) = j
//! receiving (∀ derived t, ∀j):       t_in^i(W̄) :- t_ji(W̄)
//! final pooling (∀ derived t):       t(W̄) :- t_out^i(W̄)
//! ```
//!
//! A tuple of a predicate consumed by several rules (or at several
//! positions of one rule, as in Example 8's non-linear ancestor) is
//! shipped once per *consuming occurrence's* routing — e.g. `anc(a,b)`
//! goes both to `h(b)` (to join as `anc(X,Z)`) and to `h(a)` (to join as
//! `anc(Z,Y)`), matching the paper's two sending rules for Example 8.
//! Inbox deduplication (the receive step's difference operation) absorbs
//! the overlap.
//!
//! Base relations are distributed per [`BaseDistribution`]: the paper's
//! `D_in^i :- D, h(v(r)) = i` fragments fall out of
//! [`BaseDistribution::MinimalFragments`].

use gst_common::{Error, Result};
use gst_eval::plan::RelationId;
use gst_frontend::ast::Literal;
use gst_frontend::{Program, ProgramAnalysis, Variable};
use gst_runtime::{ChannelOut, ProcessorProgram, WorkerSpec};
use gst_storage::Database;

use crate::discriminator::{DiscConstraint, DiscriminatorRef};
use crate::schemes::common::{
    atom, can_route, program, rel_id, validate_sequence, worker_databases, BaseDistribution,
    Namer,
};
use crate::schemes::CompiledScheme;

/// Discriminating choice for one rule.
#[derive(Clone)]
pub struct RuleChoice {
    /// `v(r_k)`: variables of the rule.
    pub v: Vec<Variable>,
    /// `h_k`: the rule's discriminating function.
    pub h: DiscriminatorRef,
}

/// Rewrite an arbitrary Datalog program into the §7 parallel scheme.
///
/// `choices[k]` is the discriminating choice for `source.rules[k]`; all
/// functions must share one processor count. Facts for derived predicates
/// are not supported (provide them via an auxiliary base predicate).
pub fn rewrite_general(
    source: &Program,
    choices: &[RuleChoice],
    db: &Database,
    base: BaseDistribution,
) -> Result<CompiledScheme> {
    if choices.len() != source.rules.len() {
        return Err(Error::Discriminator(format!(
            "need one discriminating choice per rule: {} rules, {} choices",
            source.rules.len(),
            choices.len()
        )));
    }
    ProgramAnalysis::new(source)?;
    let n = choices
        .first()
        .map(|c| c.h.processors())
        .ok_or_else(|| Error::Discriminator("program has no rules".into()))?;
    if choices.iter().any(|c| c.h.processors() != n) {
        return Err(Error::Discriminator(
            "all rules' discriminating functions must share one processor set".into(),
        ));
    }
    for (k, choice) in choices.iter().enumerate() {
        validate_sequence(&source.rules[k], &choice.v, &format!("v(r{k})"))?;
    }

    let interner = source.interner.clone();
    let namer = Namer::new(interner.clone());
    let derived: Vec<RelationId> = source
        .derived_predicates()
        .into_iter()
        .map(rel_id)
        .collect();
    for d in &derived {
        if db.relation(*d).is_some_and(|r| !r.is_empty()) {
            return Err(Error::Shape(format!(
                "input facts for derived predicate {} are not supported by the \
                 general scheme; load them under a base predicate",
                interner.resolve(d.0)
            )));
        }
    }

    let rule_count = source.rules.len();
    let mut programs = Vec::with_capacity(n);
    for i in 0..n {
        let mut rules = Vec::new();

        // Processing copies, one per source rule, same order.
        for (k, rule) in source.rules.iter().enumerate() {
            let head_id = rel_id(rule.head.pred());
            let mut body: Vec<Literal> = Vec::with_capacity(rule.body.len() + 1);
            for literal in &rule.body {
                match literal {
                    Literal::Atom(a) => {
                        let id: RelationId = (a.predicate, a.terms.len());
                        if derived.contains(&id) {
                            body.push(Literal::Atom(atom(
                                namer.input(id, i),
                                a.terms.clone(),
                            )));
                        } else {
                            body.push(Literal::Atom(a.clone()));
                        }
                    }
                    Literal::Constraint(c) => body.push(Literal::Constraint(c.clone())),
                }
            }
            body.push(Literal::Constraint(DiscConstraint::literal(
                choices[k].v.clone(),
                choices[k].h.clone(),
                i,
            )));
            rules.push(gst_frontend::Rule::new(
                atom(namer.out(head_id, i), rule.head.terms.clone()),
                body,
            ));
        }

        // Sending rules: per rule, per derived occurrence, per target.
        let mut channels: Vec<RelationId> = Vec::new(); // derived preds with traffic
        for (k, rule) in source.rules.iter().enumerate() {
            let choice = &choices[k];
            // Distinct (pred, args) occurrences of derived predicates.
            let mut occurrences: Vec<(RelationId, Vec<gst_frontend::Term>)> = Vec::new();
            for a in rule.body_atoms() {
                let id: RelationId = (a.predicate, a.terms.len());
                if derived.contains(&id) && !occurrences.contains(&(id, a.terms.clone())) {
                    occurrences.push((id, a.terms.clone()));
                }
            }
            for (c_id, args) in occurrences {
                if !channels.contains(&c_id) {
                    channels.push(c_id);
                }
                let routed = can_route(&args, &choice.v, choice.h.locally_evaluable());
                let pattern = if routed {
                    args.clone()
                } else {
                    namer.fresh_vars(c_id.1)
                };
                for j in 0..n {
                    let head_pred = if j == i {
                        namer.input(c_id, i)
                    } else {
                        namer.channel(c_id, i, j)
                    };
                    let mut body = vec![Literal::Atom(atom(
                        namer.out(c_id, i),
                        pattern.clone(),
                    ))];
                    if routed {
                        body.push(Literal::Constraint(DiscConstraint::literal(
                            choice.v.clone(),
                            choice.h.clone(),
                            j,
                        )));
                    } else if j != i {
                        // Broadcast: unconditional. For j == i the local
                        // copy is also unconditional.
                    }
                    let candidate = gst_frontend::Rule::new(atom(head_pred, pattern.clone()), body);
                    if !rules.contains(&candidate) {
                        rules.push(candidate);
                    }
                }
            }
        }

        let outgoing = channels
            .iter()
            .flat_map(|&c_id| {
                (0..n).filter(move |&j| j != i).map(move |j| (c_id, j))
            })
            .map(|(c_id, j)| ChannelOut {
                channel: namer.channel(c_id, i, j),
                dest: j,
                inbox: namer.input(c_id, j),
            })
            .collect();

        programs.push(ProcessorProgram {
            processor: i,
            program: program(rules, &interner),
            outgoing,
            inboxes: derived.iter().map(|&d| namer.input(d, i)).collect(),
            processing_rules: (0..rule_count).collect(),
            pooling: derived.iter().map(|&d| (namer.out(d, i), d)).collect(),
            local_idb: vec![],
            retract_channels: vec![],
        });
    }

    let edbs = worker_databases(db, &programs, base)?;
    let workers = programs
        .into_iter()
        .zip(edbs)
        .map(|(program, edb)| WorkerSpec { program, edb, session: None })
        .collect();

    Ok(CompiledScheme {
        workers,
        answers: derived,
        kind: "general scheme (§7 T_i)",
        hot_keys_split: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::HashMod;
    use gst_common::ituple;
    use gst_eval::seminaive_eval;
    use gst_workloads::{
        chain, even_odd, grid, linear_ancestor, nonlinear_ancestor, random_digraph,
    };
    use std::sync::Arc;

    fn var(p: &Program, name: &str) -> Variable {
        Variable(p.interner.get(name).unwrap())
    }

    /// Paper Example 8: v(r₁) = ⟨Y⟩, v(r₂) = ⟨Z⟩, h₁ = h₂ = h.
    fn example8_choices(p: &Program, n: usize) -> Vec<RuleChoice> {
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, 13));
        vec![
            RuleChoice {
                v: vec![var(p, "Y")],
                h: h.clone(),
            },
            RuleChoice {
                v: vec![var(p, "Z")],
                h,
            },
        ]
    }

    #[test]
    fn example8_nonlinear_ancestor_is_correct() {
        let fx = nonlinear_ancestor();
        let db = fx.database(&random_digraph(20, 40, 6));
        let scheme = rewrite_general(
            &fx.program,
            &example8_choices(&fx.program, 4),
            &db,
            BaseDistribution::Shared,
        )
        .unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
    }

    #[test]
    fn example8_is_theorem6_non_redundant() {
        let fx = nonlinear_ancestor();
        let db = fx.database(&grid(5, 5));
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let scheme = rewrite_general(
            &fx.program,
            &example8_choices(&fx.program, 4),
            &db,
            BaseDistribution::Shared,
        )
        .unwrap();
        let outcome = scheme.run().unwrap();
        assert!(
            outcome.stats.total_processing_firings() <= seq.stats.firings,
            "Theorem 6: parallel {} ≤ sequential {}",
            outcome.stats.total_processing_firings(),
            seq.stats.firings
        );
    }

    #[test]
    fn linear_ancestor_through_general_scheme() {
        // §7 subsumes §3: running the linear program through T_i.
        let fx = linear_ancestor();
        let db = fx.database(&chain(15));
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 19));
        let choices = vec![
            RuleChoice {
                v: vec![var(&fx.program, "Y")],
                h: h.clone(),
            },
            RuleChoice {
                v: vec![var(&fx.program, "Z")],
                h,
            },
        ];
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        assert_eq!(outcome.relation(anc).len(), 120);
    }

    #[test]
    fn mutual_recursion_even_odd() {
        let fx = even_odd();
        let succ: gst_storage::Relation =
            (0..12i64).map(|k| ituple![k, k + 1]).collect();
        let zero: gst_storage::Relation = [ituple![0]].into_iter().collect();
        let db = fx.database_multi(&[zero, succ]);
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 29));
        let choices: Vec<RuleChoice> = [
            vec![var(&fx.program, "X")],
            vec![var(&fx.program, "Y")],
            vec![var(&fx.program, "Y")],
        ]
        .into_iter()
        .map(|v| RuleChoice { v, h: h.clone() })
        .collect();
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let even = fx.output_id();
        let odd = (fx.program.interner.get("odd").unwrap(), 1);
        assert!(outcome.relation(even).set_eq(&seq.relation(even)));
        assert!(outcome.relation(odd).set_eq(&seq.relation(odd)));
        assert_eq!(outcome.relation(even).len(), 7); // 0,2,…,12
    }

    #[test]
    fn minimal_fragments_distribution_works() {
        let fx = nonlinear_ancestor();
        let db = fx.database(&chain(12));
        let scheme = rewrite_general(
            &fx.program,
            &example8_choices(&fx.program, 3),
            &db,
            BaseDistribution::MinimalFragments,
        )
        .unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
    }

    #[test]
    fn rejects_wrong_choice_count() {
        let fx = nonlinear_ancestor();
        let db = fx.database(&chain(3));
        let err = rewrite_general(&fx.program, &[], &db, BaseDistribution::Shared).unwrap_err();
        assert!(err.to_string().contains("one discriminating choice per rule"));
    }

    #[test]
    fn rejects_facts_for_derived_predicates() {
        let fx = nonlinear_ancestor();
        let mut db = fx.database(&chain(3));
        db.insert(fx.output_id(), ituple![9, 9]).unwrap();
        let err = rewrite_general(
            &fx.program,
            &example8_choices(&fx.program, 2),
            &db,
            BaseDistribution::Shared,
        )
        .unwrap_err();
        assert!(err.to_string().contains("derived predicate"));
    }

    #[test]
    fn rejects_mixed_processor_counts() {
        let fx = nonlinear_ancestor();
        let db = fx.database(&chain(3));
        let choices = vec![
            RuleChoice {
                v: vec![var(&fx.program, "Y")],
                h: Arc::new(HashMod::new(2, 1)),
            },
            RuleChoice {
                v: vec![var(&fx.program, "Z")],
                h: Arc::new(HashMod::new(3, 1)),
            },
        ];
        assert!(rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).is_err());
    }
}
