//! Acceptance tests for phase-attributed profiling (DESIGN.md §14).
//!
//! The profile is an *observation* of the run, so these tests pin the
//! properties its consumers rely on: it is strictly opt-in (no worker
//! allocates a profiler unless asked), under the simulation transport
//! it is as deterministic as the run itself (bit-identical JSON for the
//! same seed), it survives the TCP wire format round trip, and turning
//! it on never perturbs the least model.

use parallel_datalog::prelude::*;
use parallel_datalog::runtime::{FaultPlan, ProfileReport, TimeBase};
use parallel_datalog::workloads::{graphs, linear_ancestor};

fn profiled_config() -> RuntimeConfig {
    let mut config = RuntimeConfig::default();
    config.worker.profile = true;
    config
}

fn fixture() -> (
    parallel_datalog::workloads::Fixture,
    parallel_datalog::storage::Database,
) {
    let fx = linear_ancestor();
    let edges = graphs::random_digraph(60, 180, 7);
    let db = fx.database(&edges);
    (fx, db)
}

#[test]
fn profiling_is_opt_in() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme.execute(&RuntimeConfig::default()).unwrap();
    assert!(
        outcome.stats.workers.iter().all(|w| w.profile.is_none()),
        "default runs must not carry profiles"
    );
    assert!(
        ProfileReport::build(&outcome.stats, TimeBase::WallMicros).is_none(),
        "no profiles, no report"
    );
}

#[test]
fn same_seed_same_profile_json() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let config = profiled_config();
    for seed in [0u64, 3, 11] {
        let run = |_: u32| {
            let outcome = scheme
                .run_simulated_with(seed, FaultPlan::chaos(), &config)
                .unwrap();
            ProfileReport::build(&outcome.stats, TimeBase::VirtualTicks)
                .expect("profiled sim run must produce a report")
                .to_json()
        };
        let (a, b) = (run(0), run(1));
        assert!(a.contains("\"time_base\":\"virtual_ticks\""));
        assert_eq!(
            a, b,
            "seed {seed}: same seed must replay a bit-identical profile"
        );
    }
}

#[test]
fn sim_profile_counts_work_not_wall_time() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme
        .run_simulated_with(5, FaultPlan::jitter(), &profiled_config())
        .unwrap();
    let report = ProfileReport::build(&outcome.stats, TimeBase::VirtualTicks).unwrap();
    assert_eq!(report.unit(), "ticks");
    // Compute ticks are firing proxies: they must re-sum to the engines'
    // firing counts, not to anything clock-derived.
    let firings: u64 = outcome.stats.workers.iter().map(|w| w.eval.firings).sum();
    assert_eq!(
        report.merged.phases.compute, firings,
        "virtual compute ticks must equal total firings"
    );
    // The jittered schedule makes some worker wait at some point.
    assert!(report.merged.phases.idle > 0, "no idle ticks recorded");
}

#[test]
fn threaded_profile_attributes_every_round() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    // N=1 on the general path: one worker, no communication noise — the
    // wall-clock profile skeleton must still match the engine's rounds.
    let scheme = example3_hash_partition(&sirup, 1, &db).unwrap();
    let outcome = scheme.execute(&profiled_config()).unwrap();
    let report = ProfileReport::build(&outcome.stats, TimeBase::WallMicros).unwrap();
    assert_eq!(report.unit(), "us");
    assert_eq!(report.workers.len(), 1);
    let profile = &report.workers[0].1;
    let rounds = outcome.stats.workers[0].eval.rounds;
    // Wall durations differ run to run; normalize by comparing only the
    // structure — every *productive* engine round got a latency sample
    // (rounds that derive nothing end the fixpoint without one) and a
    // per-round entry, and rule time accounting covers every rule.
    assert!(
        profile.round_latency.count > 0 && profile.round_latency.count <= rounds,
        "latency samples ({}) must count productive rounds (engine ran {rounds})",
        profile.round_latency.count
    );
    assert!(
        !profile.per_round.is_empty() && profile.per_round.len() as u64 <= rounds,
        "per-round breakdown ({} entries) must stay within {rounds} engine rounds",
        profile.per_round.len()
    );
    assert_eq!(
        report.time_by_rule.len(),
        report.firings_by_rule.len(),
        "per-rule time and firing vectors must align"
    );
    assert_eq!(
        report.rounds.len(),
        profile.per_round.len(),
        "critical path covers every observed round"
    );
}

#[test]
fn profile_survives_the_tcp_wire_format() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let net = parallel_datalog::runtime::NetCoordinator::new(
        std::sync::Arc::new(parallel_datalog::runtime::InProcessLauncher {
            decoder: Some(parallel_datalog::core::prelude::decode_constraint),
        }),
        parallel_datalog::runtime::NetConfig::default(),
    );
    let outcome = net
        .execute(scheme.workers.clone(), &profiled_config())
        .unwrap();
    // Every worker's profile crossed the RESULT frame intact.
    assert_eq!(outcome.stats.workers.len(), 4);
    for w in &outcome.stats.workers {
        let p = w.profile.as_ref().expect("worker profile lost on the wire");
        assert!(
            p.phases.compute > 0,
            "worker {} shipped an empty compute phase",
            w.processor
        );
        assert!(
            p.round_latency.count > 0 && p.round_latency.count <= w.eval.rounds,
            "worker {} latency samples ({}) exceed its {} engine rounds",
            w.processor,
            p.round_latency.count,
            w.eval.rounds
        );
    }
    let report = ProfileReport::build(&outcome.stats, TimeBase::WallMicros).unwrap();
    assert_eq!(report.workers.len(), 4);
    let summed: u64 = outcome
        .stats
        .workers
        .iter()
        .filter_map(|w| w.profile.as_ref())
        .map(|p| p.phases.compute)
        .sum();
    assert_eq!(report.merged.phases.compute, summed);
}

#[test]
fn profiling_does_not_perturb_the_least_model() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();
    let plain = scheme.execute(&RuntimeConfig::default()).unwrap();
    let profiled = scheme.execute(&profiled_config()).unwrap();
    assert!(profiled.relation(anc).set_eq(&seq.relation(anc)));
    assert_eq!(
        plain.stats.total_firings(),
        profiled.stats.total_firings(),
        "phase timers must not change the computation they time"
    );
}

#[test]
fn profiled_recovery_still_reports_for_every_live_worker() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let plan = FaultPlan::with_recovering_crash(1, 40);
    let outcome = scheme
        .run_simulated_with(2, plan, &profiled_config())
        .unwrap();
    assert!(outcome.stats.restarts >= 1, "the crash must trigger a restart");
    // The crashed incarnation's partial profile dies with it; the
    // replacement re-installs a fresh one, so every surviving report
    // still carries a profile and the analyzer still builds.
    for w in &outcome.stats.workers {
        assert!(
            w.profile.is_some(),
            "worker {} lost its profiler across the restart",
            w.processor
        );
    }
    let report = ProfileReport::build(&outcome.stats, TimeBase::VirtualTicks).unwrap();
    assert!(report.merged.phases.compute > 0);
    let anc = fx.output_id();
    assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
}
