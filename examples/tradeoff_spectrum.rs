//! Section 6 of the paper, live: sweep the keep-local probability of the
//! generalized scheme `R_i` and print the redundancy ↔ communication
//! spectrum whose two endpoints are the non-redundant scheme (§3) and
//! the communication-free scheme ([Wolfson 88]).
//!
//! ```text
//! cargo run --release --example tradeoff_spectrum
//! ```

use std::sync::Arc;

use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{grid, linear_ancestor};

fn main() -> Result<()> {
    let n = 4;
    let fx = linear_ancestor();
    let edges = grid(8, 8); // many alternative derivations ⇒ redundancy visible
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program)?;
    let sequential = seminaive_eval(&fx.program, &db)?;
    let anc = fx.output_id();

    let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
    let base_h: DiscriminatorRef = Arc::new(HashMod::new(n, 23));

    println!(
        "grid 8×8: |par| = {}, |anc| = {}, sequential firings = {}\n",
        edges.len(),
        sequential.relation(anc).len(),
        sequential.stats.firings
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "α", "tuples sent", "firings", "redundancy", "correct"
    );

    let mut last_comm = u64::MAX;
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let h_locals: Vec<DiscriminatorRef> = (0..n)
            .map(|i| Arc::new(Mixed::new(i, base_h.clone(), alpha, 31)) as DiscriminatorRef)
            .collect();
        let cfg = GeneralizedConfig {
            v_r: vec![var("Z")],
            v_e: vec![var("X")],
            h_prime: base_h.clone(),
            h_locals,
        };
        let outcome = rewrite_generalized(&sirup, &cfg, &db)?.run()?;
        let firings = outcome.stats.total_processing_firings();
        let redundancy = firings.saturating_sub(sequential.stats.firings);
        let comm = outcome.stats.total_tuples_sent();
        println!(
            "{:>6.2} {:>12} {:>12} {:>12} {:>10}",
            alpha,
            comm,
            firings,
            redundancy,
            outcome.relation(anc).set_eq(&sequential.relation(anc)),
        );
        assert!(
            outcome.relation(anc).set_eq(&sequential.relation(anc)),
            "Theorem 4: correct at every point of the spectrum"
        );
        assert!(comm <= last_comm, "communication decreases with α");
        last_comm = comm;
    }

    println!(
        "\nα = 0 is the §3 non-redundant scheme; α = 1 is the zero-communication"
    );
    println!("scheme of [Wolfson 88]; in between, every point is a legal execution —");
    println!("\"more communication would lead to lesser redundancy, and vice-versa\".");
    Ok(())
}
