//! The multi-process transport: one OS process per processor over TCP.
//!
//! The paper's architecture (§3) is agnostic about what a "processor" is;
//! [`crate::transport::ThreadedTransport`] realizes it as OS threads and
//! [`crate::sim::SimTransport`] as simulated interleavings. This module
//! cuts the same [`crate::worker::WorkerCore`] state machine at a *real
//! network boundary*: a [`NetCoordinator`] binds a TCP listener, launches
//! one worker per processor (a separate OS process under
//! [`ProcessLauncher`], or a thread speaking real loopback TCP under
//! [`InProcessLauncher`] for tests and benchmarks), ships each worker its
//! [`WorkerSpec`] over the framed wire protocol ([`crate::wire`]), relays
//! worker-to-worker envelopes by destination, and pools the answer.
//!
//! ## Topology and protocol
//!
//! The fleet is a star: every worker holds exactly one TCP connection, to
//! the coordinator, which relays envelopes between workers without
//! re-encoding them: the destination leads the frame body, the relay
//! validates the envelope (corruption dies at the *sender's* link, never
//! inside an innocent receiver) and forwards the original bytes
//! verbatim. A (re)connecting
//! worker sends `Hello{index, incarnation}`; the coordinator answers with
//! the full `Job` (config, symbol table, program, EDB, session seed) so a
//! worker process is stateless across restarts — SIGKILL loses nothing
//! that the Job and the sender-side replay logs cannot rebuild.
//!
//! ## Crash recovery
//!
//! The supervisor protocol mirrors the threaded transport's exactly
//! (`DESIGN.md` §7): a worker death — process exit, socket EOF or reset,
//! corrupt frame, heartbeat timeout — is *recoverable*; within the restart
//! budget the coordinator bumps the recovery epoch, broadcasts `Recover`
//! to the survivors (who replay from their per-link replay logs), and
//! launches a fresh incarnation, which receives the Job again plus the
//! same `Recover` so it repairs into the current epoch. A typed
//! [`wire::FRAME_ERROR`] marked fatal (arity bugs, watchdog expiry)
//! aborts the fleet immediately.
//!
//! ## Fault injection
//!
//! [`NetFaultPlan`] arms deterministic *socket-level* faults on a worker's
//! write path — delay before connecting, abrupt disconnect after N bytes,
//! truncation mid-frame at byte N, garbage injection — so the recovery
//! machinery is testable in CI without flaky timing. [`KillSpec`] makes
//! the coordinator SIGKILL a live worker process after receiving N bytes
//! from it: a real `kill -9` mid-fixpoint, byte-counted for determinism.

use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gst_common::{Error, FxHashMap, Interner, Result};
use gst_frontend::ast::ConstraintRef;

use crate::coordinator::RuntimeConfig;
use crate::message::{Envelope, Message};
use crate::obs::{ObsEvent, ObsKind, TimeBase};
use crate::spec::WorkerSpec;
use crate::stats::ExecutionOutcome;
use crate::transport::{assemble_outcome, validate_specs, Transport, WorkerResult};
use crate::wire;
use crate::worker::{finish_core, watchdog_error, Outbox, Step, WorkerCore};

/// A decoder for constraint literals that travel inside a job frame —
/// typically `gst_core::prelude::decode_constraint`. The runtime cannot
/// depend on `gst-core`, so whoever embeds a net worker injects it.
pub type ConstraintDecoderFn = fn(&[u8]) -> Result<ConstraintRef>;

/// Timing knobs for the TCP transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Address the coordinator binds its listener on. Port 0 picks a free
    /// ephemeral port. Default `127.0.0.1:0`.
    pub bind: SocketAddr,
    /// How often the coordinator pings every live link. Default 1s.
    pub heartbeat_interval: Duration,
    /// A link silent this long (no frames, no pongs) is declared dead;
    /// also the socket read/write timeout on both ends, so a wedged peer
    /// becomes an error instead of a hang. Default 20s.
    pub heartbeat_timeout: Duration,
    /// Total budget a worker spends trying to connect (and the
    /// coordinator spends waiting for a launched worker's Hello) before
    /// the attempt counts as a death. Default 10s.
    pub connect_timeout: Duration,
    /// Initial pause between a worker's connect attempts; doubles per
    /// failure. Default 50ms.
    pub connect_backoff: Duration,
    /// Cap on the exponential connect backoff. Default 2s.
    pub connect_backoff_cap: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bind: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            heartbeat_interval: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(20),
            connect_timeout: Duration::from_secs(10),
            connect_backoff: Duration::from_millis(50),
            connect_backoff_cap: Duration::from_secs(2),
        }
    }
}

/// One deterministic socket-level fault, armed on a worker's write path.
///
/// Byte thresholds count the worker's cumulative bytes written on its
/// link (Hello included), so a fault fires at the same point in the
/// protocol on every run — no timing races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Sleep this many milliseconds before the first connect attempt.
    Delay(u64),
    /// Once this many bytes are written, abruptly close the socket
    /// between writes (the peer sees EOF, possibly mid-frame).
    Disconnect(u64),
    /// Write exactly this many bytes — cutting the current frame short —
    /// then close: the peer sees EOF *inside* a frame.
    Truncate(u64),
    /// At this many bytes, write garbage over the stream and close: the
    /// peer must reject the corruption cleanly, never panic or hang.
    Garbage(u64),
}

impl NetFault {
    /// Parse `kind@N` — e.g. `disconnect@2048`, `delay@500` (ms).
    pub fn parse(s: &str) -> Result<NetFault> {
        let (kind, at) = s
            .split_once('@')
            .ok_or_else(|| Error::Runtime(format!("fault `{s}` is not `kind@N`")))?;
        let at: u64 = at
            .parse()
            .map_err(|_| Error::Runtime(format!("fault `{s}`: `{at}` is not a number")))?;
        match kind {
            "delay" => Ok(NetFault::Delay(at)),
            "disconnect" => Ok(NetFault::Disconnect(at)),
            "truncate" => Ok(NetFault::Truncate(at)),
            "garbage" => Ok(NetFault::Garbage(at)),
            _ => Err(Error::Runtime(format!(
                "unknown fault kind `{kind}` (delay, disconnect, truncate, garbage)"
            ))),
        }
    }

    /// The `kind@N` form [`NetFault::parse`] accepts.
    pub fn render(&self) -> String {
        match self {
            NetFault::Delay(n) => format!("delay@{n}"),
            NetFault::Disconnect(n) => format!("disconnect@{n}"),
            NetFault::Truncate(n) => format!("truncate@{n}"),
            NetFault::Garbage(n) => format!("garbage@{n}"),
        }
    }
}

/// One worker's armed fault and whether it survives restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// The worker whose link carries the fault.
    pub worker: usize,
    /// The fault itself.
    pub fault: NetFault,
    /// Persistent faults re-arm on every incarnation (driving the fleet
    /// into its restart budget); one-shot faults arm only the very first
    /// spawn of the worker, so the restarted incarnation runs clean.
    pub persistent: bool,
}

/// A deterministic socket-fault schedule for the fleet.
///
/// Grammar: comma-separated `W:kind@N` entries, `!` suffix for
/// persistent — e.g. `1:disconnect@2048,0:delay@500` or `1:garbage@150!`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// The armed faults, at most one consulted per worker (first match).
    pub faults: Vec<FaultEntry>,
}

impl NetFaultPlan {
    /// Parse the `W:kind@N[!],...` grammar. Empty input is an empty plan.
    pub fn parse(s: &str) -> Result<NetFaultPlan> {
        let mut faults = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (spec, persistent) = match part.strip_suffix('!') {
                Some(spec) => (spec, true),
                None => (part, false),
            };
            let (worker, fault) = spec
                .split_once(':')
                .ok_or_else(|| Error::Runtime(format!("fault `{part}` is not `W:kind@N`")))?;
            let worker: usize = worker
                .parse()
                .map_err(|_| Error::Runtime(format!("fault `{part}`: bad worker index")))?;
            faults.push(FaultEntry { worker, fault: NetFault::parse(fault)?, persistent });
        }
        Ok(NetFaultPlan { faults })
    }

    /// The fault to arm on `worker`'s next spawn, if any. One-shot faults
    /// apply only when this is the worker's first spawn ever (across
    /// every `execute` call of the coordinator's lifetime).
    pub fn fault_for(&self, worker: usize, first_spawn: bool) -> Option<NetFault> {
        self.faults
            .iter()
            .find(|e| e.worker == worker && (e.persistent || first_spawn))
            .map(|e| e.fault)
    }
}

/// Make the coordinator SIGKILL worker `worker`'s live process once it
/// has received `after_bytes` cumulative frame bytes from it — counted
/// across `execute` calls (so the kill can land mid-update-batch), firing
/// exactly once per coordinator. Grammar: `W@N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The worker whose process gets killed.
    pub worker: usize,
    /// Cumulative received bytes that trigger the kill.
    pub after_bytes: u64,
}

impl KillSpec {
    /// Parse `W@N`, e.g. `1@4096`.
    pub fn parse(s: &str) -> Result<KillSpec> {
        let (worker, after) = s
            .split_once('@')
            .ok_or_else(|| Error::Runtime(format!("kill spec `{s}` is not `W@N`")))?;
        let worker = worker
            .parse()
            .map_err(|_| Error::Runtime(format!("kill spec `{s}`: bad worker index")))?;
        let after_bytes = after
            .parse()
            .map_err(|_| Error::Runtime(format!("kill spec `{s}`: bad byte count")))?;
        Ok(KillSpec { worker, after_bytes })
    }
}

/// Everything a worker needs to join a fleet, in both directions: the
/// coordinator renders it to a canonical argument vector for process
/// launchers, and a worker binary parses that vector back.
#[derive(Debug, Clone)]
pub struct NetWorkerArgs {
    /// Coordinator address to connect to, `host:port`.
    pub connect: String,
    /// Processor index this worker runs.
    pub index: usize,
    /// Incarnation number (0 for the first spawn; bumps per restart).
    pub incarnation: u64,
    /// Timing knobs (only the connect/heartbeat fields matter to a
    /// worker).
    pub net: NetConfig,
    /// Socket fault armed on this incarnation's write path.
    pub fault: Option<NetFault>,
}

impl NetWorkerArgs {
    /// Render the canonical `--flag value` vector [`NetWorkerArgs::parse`]
    /// accepts.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--connect".into(),
            self.connect.clone(),
            "--index".into(),
            self.index.to_string(),
            "--incarnation".into(),
            self.incarnation.to_string(),
            "--heartbeat-timeout-ms".into(),
            self.net.heartbeat_timeout.as_millis().to_string(),
            "--connect-timeout-ms".into(),
            self.net.connect_timeout.as_millis().to_string(),
            "--connect-backoff-ms".into(),
            self.net.connect_backoff.as_millis().to_string(),
            "--connect-backoff-cap-ms".into(),
            self.net.connect_backoff_cap.as_millis().to_string(),
        ];
        if let Some(fault) = &self.fault {
            args.push("--net-fault".into());
            args.push(fault.render());
        }
        args
    }

    /// Parse the vector [`NetWorkerArgs::to_args`] renders.
    pub fn parse(args: &[String]) -> Result<NetWorkerArgs> {
        let mut out = NetWorkerArgs {
            connect: String::new(),
            index: usize::MAX,
            incarnation: 0,
            net: NetConfig::default(),
            fault: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| Error::Runtime(format!("flag {flag} needs a value")))?;
            let ms = || -> Result<Duration> {
                value
                    .parse()
                    .map(Duration::from_millis)
                    .map_err(|_| Error::Runtime(format!("{flag}: `{value}` is not a number")))
            };
            match flag.as_str() {
                "--connect" => out.connect = value.clone(),
                "--index" => {
                    out.index = value.parse().map_err(|_| {
                        Error::Runtime(format!("--index: `{value}` is not a number"))
                    })?;
                }
                "--incarnation" => {
                    out.incarnation = value.parse().map_err(|_| {
                        Error::Runtime(format!("--incarnation: `{value}` is not a number"))
                    })?;
                }
                "--heartbeat-timeout-ms" => out.net.heartbeat_timeout = ms()?,
                "--connect-timeout-ms" => out.net.connect_timeout = ms()?,
                "--connect-backoff-ms" => out.net.connect_backoff = ms()?,
                "--connect-backoff-cap-ms" => out.net.connect_backoff_cap = ms()?,
                "--net-fault" => out.fault = Some(NetFault::parse(value)?),
                _ => return Err(Error::Runtime(format!("unknown worker flag {flag}"))),
            }
        }
        if out.connect.is_empty() {
            return Err(Error::Runtime("worker needs --connect".into()));
        }
        if out.index == usize::MAX {
            return Err(Error::Runtime("worker needs --index".into()));
        }
        Ok(out)
    }
}

/// A launched worker, as the coordinator holds it.
pub trait WorkerHandle: Send {
    /// Terminate the incarnation with prejudice (SIGKILL for processes;
    /// a no-op for in-process threads, whose sockets die with the
    /// coordinator). Must also reap, so no zombies outlive the run.
    fn kill(&mut self);
}

/// How worker incarnations come into being. The coordinator calls this
/// for every spawn — initial fleet and every restart.
pub trait Launcher: Send + Sync {
    /// Start one worker incarnation that will connect to
    /// `args.connect` and send `Hello{args.index, args.incarnation}`.
    fn spawn_worker(&self, args: &NetWorkerArgs) -> Result<Box<dyn WorkerHandle>>;
}

/// Spawn each worker as a separate OS process: `program prefix... args...`
/// with `args` in the canonical [`NetWorkerArgs::to_args`] grammar. The
/// binary is typically `std::env::current_exe()` re-executed with a
/// worker-mode prefix (the `pdatalog net-worker` subcommand).
#[derive(Debug, Clone)]
pub struct ProcessLauncher {
    /// The worker executable.
    pub program: std::path::PathBuf,
    /// Arguments placed before the generated worker args (mode selector).
    pub prefix: Vec<String>,
}

struct ChildHandle {
    child: Child,
}

impl WorkerHandle for ChildHandle {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildHandle {
    fn drop(&mut self) {
        // Kill-and-reap on every path: no stray worker processes, no
        // zombies, even when the coordinator errors out.
        self.kill();
    }
}

impl Launcher for ProcessLauncher {
    fn spawn_worker(&self, args: &NetWorkerArgs) -> Result<Box<dyn WorkerHandle>> {
        let child = Command::new(&self.program)
            .args(&self.prefix)
            .args(args.to_args())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| {
                Error::Runtime(format!("spawning worker {}: {e}", args.index))
            })?;
        Ok(Box::new(ChildHandle { child }))
    }
}

struct ThreadHandle;

impl WorkerHandle for ThreadHandle {
    fn kill(&mut self) {}
}

/// Run each worker as a thread in this process — but over *real* TCP
/// loopback, exercising the full wire protocol, reconnect and fault
/// machinery without process-spawn cost. The test and benchmark launcher;
/// [`KillSpec`] needs real processes and is not supported here.
#[derive(Debug, Clone, Default)]
pub struct InProcessLauncher {
    /// Constraint decoder injected into the worker threads.
    pub decoder: Option<ConstraintDecoderFn>,
}

impl Launcher for InProcessLauncher {
    fn spawn_worker(&self, args: &NetWorkerArgs) -> Result<Box<dyn WorkerHandle>> {
        let args = args.clone();
        let decoder = self.decoder;
        std::thread::Builder::new()
            .name(format!("net-worker-{}", args.index))
            .spawn(move || {
                let _ = run_net_worker(&args, decoder);
            })
            .map_err(|e| Error::Runtime(format!("spawning worker thread: {e}")))?;
        Ok(Box::new(ThreadHandle))
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// The write half of a worker's link, with an optional armed fault.
/// Every byte the worker sends flows through here, so byte-counted
/// faults are deterministic with respect to the protocol.
struct FaultGate {
    stream: TcpStream,
    written: u64,
    fault: Option<NetFault>,
}

impl FaultGate {
    fn trip(&mut self, what: &str) -> std::io::Result<usize> {
        self.fault = None;
        let _ = self.stream.shutdown(Shutdown::Both);
        Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            format!("injected {what}"),
        ))
    }
}

impl std::io::Write for FaultGate {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let pass = |gate: &mut FaultGate, buf: &[u8]| {
            let n = gate.stream.write(buf)?;
            gate.written += n as u64;
            Ok(n)
        };
        match self.fault {
            None | Some(NetFault::Delay(_)) => pass(self, buf),
            Some(NetFault::Disconnect(at)) => {
                if self.written >= at {
                    self.trip("disconnect")
                } else {
                    pass(self, buf)
                }
            }
            Some(NetFault::Truncate(at)) => {
                let budget = at.saturating_sub(self.written) as usize;
                if budget == 0 {
                    self.trip("truncation")
                } else if buf.len() < budget {
                    pass(self, buf)
                } else {
                    // Cut the stream at exactly `at` bytes — mid-frame.
                    let _ = self.stream.write_all(&buf[..budget]);
                    self.written = at;
                    self.trip("truncation")
                }
            }
            Some(NetFault::Garbage(at)) => {
                let budget = at.saturating_sub(self.written) as usize;
                if budget == 0 {
                    let _ = self.stream.write_all(&[0xFF; 16]);
                    self.trip("garbage")
                } else if buf.len() < budget {
                    pass(self, buf)
                } else {
                    let _ = self.stream.write_all(&buf[..budget]);
                    self.written = at;
                    let _ = self.stream.write_all(&[0xFF; 16]);
                    self.trip("garbage")
                }
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

type SharedGate = Arc<Mutex<FaultGate>>;

fn lock_gate(gate: &SharedGate) -> MutexGuard<'_, FaultGate> {
    gate.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Worker outbox: every envelope becomes one framed write on the link,
/// destination first so the coordinator can relay without re-encoding.
struct NetOutbox {
    gate: SharedGate,
}

impl Outbox for NetOutbox {
    fn send(&mut self, to: usize, env: Envelope) -> Result<()> {
        let body = wire::encode_envelope(to, &env);
        wire::write_frame(&mut *lock_gate(&self.gate), wire::FRAME_ENVELOPE, &body)
    }
}

enum RxEv {
    Env(Envelope),
    Shutdown,
    Lost(Error),
}

/// Connect to the coordinator with capped exponential backoff.
fn connect_with_backoff(args: &NetWorkerArgs) -> Result<TcpStream> {
    let deadline = Instant::now() + args.net.connect_timeout;
    let mut backoff = args.net.connect_backoff;
    loop {
        match TcpStream::connect(&args.connect) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + backoff > deadline {
                    return Err(Error::Runtime(format!(
                        "worker {}: could not reach coordinator at {} within {:?}: {e}",
                        args.index, args.connect, args.net.connect_timeout
                    )));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(args.net.connect_backoff_cap);
            }
        }
    }
}

fn report_fatal(gate: &SharedGate, error: &Error) {
    // Best effort: if the link is already dead the coordinator will see
    // EOF and classify the death as recoverable instead.
    let body = wire::encode_error(true, &error.to_string());
    let _ = wire::write_frame(&mut *lock_gate(gate), wire::FRAME_ERROR, &body);
}

/// Run one worker incarnation to completion: connect (with backoff),
/// handshake, receive the job, run the fixpoint against the coordinator's
/// relay, send the result. `Ok` means a clean finish or an orderly
/// shutdown; `Err` means this incarnation died (the coordinator decides
/// whether that is recoverable).
pub fn run_net_worker(args: &NetWorkerArgs, decoder: Option<ConstraintDecoderFn>) -> Result<()> {
    if let Some(NetFault::Delay(ms)) = args.fault {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let stream = connect_with_backoff(args)?;
    let _ = stream.set_nodelay(true);
    let io_err = |e: std::io::Error| Error::Runtime(format!("worker link setup: {e}"));
    stream
        .set_read_timeout(Some(args.net.heartbeat_timeout))
        .map_err(io_err)?;
    stream
        .set_write_timeout(Some(args.net.heartbeat_timeout))
        .map_err(io_err)?;
    let mut reader = stream.try_clone().map_err(io_err)?;
    let gate: SharedGate = Arc::new(Mutex::new(FaultGate {
        stream,
        written: 0,
        fault: args.fault,
    }));

    let hello = wire::encode_hello(args.index, args.incarnation);
    wire::write_frame(&mut *lock_gate(&gate), wire::FRAME_HELLO, &hello)?;

    // The job arrives before anything else; answer heartbeats meanwhile.
    let mut stashed: Vec<Vec<u8>> = Vec::new();
    let job = loop {
        match wire::read_frame(&mut reader)? {
            Some((wire::FRAME_JOB, body)) => break body,
            Some((wire::FRAME_PING, body)) => {
                wire::write_frame(&mut *lock_gate(&gate), wire::FRAME_PONG, &body)?;
            }
            Some((wire::FRAME_ENVELOPE, body)) => stashed.push(body),
            Some((wire::FRAME_SHUTDOWN, _)) => return Ok(()),
            Some((kind, _)) => {
                return Err(Error::Runtime(format!(
                    "worker {}: unexpected frame kind {kind} before job",
                    args.index
                )))
            }
            None => {
                return Err(Error::Runtime(format!(
                    "worker {}: coordinator closed the link before sending a job",
                    args.index
                )))
            }
        }
    };
    let decode: wire::ConstraintDecode = match &decoder {
        Some(f) => Some(f as &(dyn Fn(&[u8]) -> Result<ConstraintRef> + Send + Sync)),
        None => None,
    };
    let job = wire::decode_job(&job, decode)?;
    let worker_cfg = job.worker.clone();
    let interner = job.spec.program.program.interner.clone();
    let mut core = match WorkerCore::with_epoch(job.spec, job.n, job.epoch) {
        Ok(core) => core,
        Err(e) => {
            report_fatal(&gate, &e);
            return Err(e);
        }
    };
    core.set_morsel_threads(worker_cfg.morsel_threads);
    if worker_cfg.profile {
        // Per-process wall clock: the profile carries durations only, so
        // worker-local origins are fine — the coordinator merges the
        // shipped profiles, never compares absolute stamps.
        core.set_profiler(crate::profile::Profiler::wall(), gst_eval::TimeMode::Wall);
    }
    if let Some(recover) = job.recover {
        // Absorbed before any engine step (and before any stashed
        // traffic): the epoch repair must precede every send this
        // incarnation counts.
        core.enqueue(recover);
    }
    for body in stashed {
        let (_, env) = wire::decode_envelope(&body, &interner)?;
        core.enqueue(env);
    }

    // Reader thread: decode envelopes, answer pings immediately (even
    // while the main loop is deep in a fixpoint round), surface link
    // death as an event.
    let (tx, rx) = channel::<RxEv>();
    let pong_gate = gate.clone();
    let reader_interner = interner.clone();
    let reader_thread = std::thread::Builder::new()
        .name(format!("net-worker-{}-rx", args.index))
        .spawn(move || loop {
            match wire::read_frame(&mut reader) {
                Ok(Some((wire::FRAME_ENVELOPE, body))) => {
                    match wire::decode_envelope(&body, &reader_interner) {
                        Ok((_, env)) => {
                            if tx.send(RxEv::Env(env)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(RxEv::Lost(e));
                            return;
                        }
                    }
                }
                Ok(Some((wire::FRAME_PING, body))) => {
                    if wire::write_frame(&mut *lock_gate(&pong_gate), wire::FRAME_PONG, &body)
                        .is_err()
                    {
                        let _ = tx.send(RxEv::Lost(Error::Runtime(
                            "link died answering a heartbeat".into(),
                        )));
                        return;
                    }
                }
                Ok(Some((wire::FRAME_SHUTDOWN, _))) => {
                    let _ = tx.send(RxEv::Shutdown);
                    return;
                }
                Ok(Some((kind, _))) => {
                    let _ = tx.send(RxEv::Lost(Error::Runtime(format!(
                        "unexpected frame kind {kind} from coordinator"
                    ))));
                    return;
                }
                Ok(None) => {
                    let _ = tx.send(RxEv::Lost(Error::Runtime(
                        "coordinator closed the link".into(),
                    )));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(RxEv::Lost(e));
                    return;
                }
            }
        })
        .map_err(|e| Error::Runtime(format!("spawning reader thread: {e}")))?;
    // The reader owns its socket clone; it exits when the link dies.
    drop(reader_thread);

    let mut out = NetOutbox { gate: gate.clone() };
    let mut idle_since: Option<Instant> = None;
    loop {
        loop {
            match rx.try_recv() {
                Ok(RxEv::Env(env)) => core.enqueue(env),
                Ok(RxEv::Shutdown) => return Ok(()),
                Ok(RxEv::Lost(e)) => return Err(e),
                Err(_) => break,
            }
        }
        match core.step(&mut out) {
            Err(e) => {
                report_fatal(&gate, &e);
                return Err(e);
            }
            Ok(Step::Done) => break,
            Ok(Step::Worked) => idle_since = None,
            Ok(Step::Idle) => {
                let since = *idle_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= worker_cfg.idle_watchdog {
                    let e = watchdog_error(core.id(), since.elapsed());
                    report_fatal(&gate, &e);
                    return Err(e);
                }
                match rx.recv_timeout(worker_cfg.idle_poll) {
                    Ok(RxEv::Env(env)) => core.enqueue(env),
                    Ok(RxEv::Shutdown) => return Ok(()),
                    Ok(RxEv::Lost(e)) => return Err(e),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(Error::Runtime(format!(
                            "worker {}: reader thread gone",
                            args.index
                        )))
                    }
                }
            }
        }
    }
    let (report, pooled, _events) = finish_core(core, &worker_cfg);
    let body = wire::encode_result(&report, &pooled)?;
    let mut guard = lock_gate(&gate);
    wire::write_frame(&mut *guard, wire::FRAME_RESULT, &body)
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// Byte counters and kill bookkeeping that outlive a single `execute`
/// call, so a [`KillSpec`] threshold can accumulate across the rounds of
/// an update session and still fire exactly once.
#[derive(Default)]
struct Persist {
    rx_bytes: FxHashMap<usize, u64>,
    spawns: FxHashMap<usize, u64>,
    kill_fired: bool,
}

/// The TCP transport: launches one worker per processor via its
/// [`Launcher`], distributes [`WorkerSpec`]s over the framed wire
/// protocol, relays worker-to-worker envelopes, supervises crashes with
/// restart + replay, and pools the answer.
pub struct NetCoordinator {
    launcher: Arc<dyn Launcher>,
    net: NetConfig,
    faults: NetFaultPlan,
    kill: Option<KillSpec>,
    persist: Mutex<Persist>,
}

impl NetCoordinator {
    /// A coordinator over `launcher` with the given timing knobs.
    pub fn new(launcher: Arc<dyn Launcher>, net: NetConfig) -> Self {
        NetCoordinator {
            launcher,
            net,
            faults: NetFaultPlan::default(),
            kill: None,
            persist: Mutex::new(Persist::default()),
        }
    }

    /// Arm a socket-fault schedule (worker-side write faults).
    pub fn with_faults(mut self, faults: NetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Arm a byte-counted SIGKILL of one live worker process.
    pub fn with_kill(mut self, kill: KillSpec) -> Self {
        self.kill = Some(kill);
        self
    }
}

impl Transport for NetCoordinator {
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome> {
        validate_specs(&specs)?;
        let listener = TcpListener::bind(self.net.bind)
            .map_err(|e| Error::Runtime(format!("binding {}: {e}", self.net.bind)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Runtime(format!("listener address: {e}")))?;

        let (ev_tx, ev_rx) = channel::<Ev>();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let tx = ev_tx.clone();
            let stop = stop.clone();
            let hb_timeout = self.net.heartbeat_timeout;
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(listener, tx, stop, hb_timeout))
                .map_err(|e| Error::Runtime(format!("spawning accept thread: {e}")))?
        };

        let mut sup = Supervisor {
            specs: &specs,
            config,
            net: &self.net,
            launcher: self.launcher.as_ref(),
            faults: &self.faults,
            kill: self.kill,
            persist: &self.persist,
            addr,
            ev_rx,
            _ev_tx: ev_tx,
            interner: specs[0].program.program.interner.clone(),
            links: (0..specs.len()).map(|_| None).collect(),
            handles: (0..specs.len()).map(|_| None).collect(),
            incarnations: vec![0; specs.len()],
            awaiting: vec![None; specs.len()],
            finished: (0..specs.len()).map(|_| None).collect(),
            pending_recover: vec![None; specs.len()],
            parked: vec![Vec::new(); specs.len()],
            restarts_used: vec![0; specs.len()],
            total_restarts: 0,
            epoch: 0,
            aborting: None,
            transport_events: Vec::new(),
            started: Instant::now(),
            reconnects: 0,
            relay_bytes: 0,
            nonce: 0,
            last_ping: Instant::now(),
        };
        let outcome = sup.run();

        // Teardown: orderly shutdown for survivors, hard kill (and reap)
        // for the rest, and unblock the accept loop so it can exit.
        for link in sup.links.iter_mut().flatten() {
            let _ = wire::write_frame(&mut link.stream, wire::FRAME_SHUTDOWN, &[]);
        }
        sup.links.iter_mut().for_each(|l| *l = None);
        for handle in sup.handles.iter_mut().flatten() {
            handle.kill();
        }
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = accept_thread.join();

        let (results, wall, restarts, events, reconnects, relay_bytes) = outcome?;
        let mut outcome =
            assemble_outcome(results, wall, restarts, TimeBase::WallMicros, events)?;
        outcome.stats.reconnects = reconnects;
        outcome.stats.relay_bytes = relay_bytes;
        Ok(outcome)
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Ev>,
    stop: Arc<AtomicBool>,
    hb_timeout: Duration,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_read_timeout(Some(hb_timeout)).is_err()
                    || stream.set_write_timeout(Some(hb_timeout)).is_err()
                {
                    continue;
                }
                // Handshake here (bounded by the read timeout) so only
                // identified links reach the supervisor.
                if let Ok(Some((wire::FRAME_HELLO, body))) = wire::read_frame(&mut stream) {
                    if let Ok((index, incarnation)) = wire::decode_hello(&body) {
                        if tx.send(Ev::Conn { index, incarnation, stream }).is_err() {
                            return;
                        }
                    }
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

enum Ev {
    Conn { index: usize, incarnation: u64, stream: TcpStream },
    Frame { index: usize, incarnation: u64, kind: u8, body: Vec<u8> },
    Down { index: usize, incarnation: u64, error: Error },
}

struct Link {
    stream: TcpStream,
    incarnation: u64,
    last_heard: Instant,
}

type RunOutput = (
    Vec<WorkerResult>,
    Duration,
    u64,
    Vec<ObsEvent>,
    u64,
    u64,
);

struct Supervisor<'a> {
    specs: &'a [WorkerSpec],
    config: &'a RuntimeConfig,
    net: &'a NetConfig,
    launcher: &'a dyn Launcher,
    faults: &'a NetFaultPlan,
    kill: Option<KillSpec>,
    persist: &'a Mutex<Persist>,
    addr: SocketAddr,
    ev_rx: Receiver<Ev>,
    /// Keeps the event channel alive even if every reader thread and the
    /// accept loop are momentarily gone.
    _ev_tx: Sender<Ev>,
    interner: Interner,
    links: Vec<Option<Link>>,
    handles: Vec<Option<Box<dyn WorkerHandle>>>,
    incarnations: Vec<u64>,
    awaiting: Vec<Option<Instant>>,
    finished: Vec<Option<WorkerResult>>,
    pending_recover: Vec<Option<Envelope>>,
    /// Envelope frames relayed toward a worker that has no live link
    /// *right now* — not yet connected, or restarting. The threaded
    /// transport's queues outlive a crash; these buffers are their wire
    /// equivalent, flushed in order once the destination (re)connects.
    /// Pre-crash entries are dropped by the receiver's epoch filter, so
    /// parking never delivers stale state. Dropping them instead would
    /// desynchronize Safra's counts (a message counted as sent but never
    /// received keeps the termination token circulating forever).
    parked: Vec<Vec<Vec<u8>>>,
    restarts_used: Vec<u32>,
    total_restarts: u64,
    epoch: u64,
    aborting: Option<Error>,
    transport_events: Vec<ObsEvent>,
    started: Instant,
    reconnects: u64,
    relay_bytes: u64,
    nonce: u64,
    last_ping: Instant,
}

impl Supervisor<'_> {
    fn run(&mut self) -> Result<RunOutput> {
        for index in 0..self.specs.len() {
            if let Err(e) = self.spawn(index) {
                self.abort(0, e);
                break;
            }
        }
        let tick = self
            .net
            .heartbeat_interval
            .min(Duration::from_millis(100));
        while self.aborting.is_none() && self.finished.iter().any(Option::is_none) {
            match self.ev_rx.recv_timeout(tick) {
                Ok(Ev::Conn { index, incarnation, stream }) => {
                    self.on_conn(index, incarnation, stream);
                }
                Ok(Ev::Frame { index, incarnation, kind, body }) => {
                    self.on_frame(index, incarnation, kind, body);
                }
                Ok(Ev::Down { index, incarnation, error }) => {
                    if self.links[index]
                        .as_ref()
                        .is_some_and(|l| l.incarnation == incarnation)
                        && self.finished[index].is_none()
                    {
                        self.die(index, error);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a sender"),
            }
            self.tick();
        }
        if let Some(e) = self.aborting.take() {
            return Err(e);
        }
        let results = std::mem::take(&mut self.finished)
            .into_iter()
            .map(|r| r.expect("loop exits only when every worker finished"))
            .collect();
        Ok((
            results,
            self.started.elapsed(),
            self.total_restarts,
            std::mem::take(&mut self.transport_events),
            self.reconnects,
            self.relay_bytes,
        ))
    }

    fn spawn(&mut self, index: usize) -> Result<()> {
        let first_spawn = {
            let mut persist = self
                .persist
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let spawns = persist.spawns.entry(index).or_insert(0);
            let first = *spawns == 0;
            *spawns += 1;
            first
        };
        let args = NetWorkerArgs {
            connect: self.addr.to_string(),
            index,
            incarnation: self.incarnations[index],
            net: self.net.clone(),
            fault: self.faults.fault_for(index, first_spawn),
        };
        self.handles[index] = Some(self.launcher.spawn_worker(&args)?);
        self.awaiting[index] = Some(Instant::now());
        Ok(())
    }

    fn on_conn(&mut self, index: usize, incarnation: u64, stream: TcpStream) {
        if index >= self.specs.len()
            || incarnation != self.incarnations[index]
            || self.links[index].is_some()
            || self.finished[index].is_some()
            || self.aborting.is_some()
        {
            // Stale incarnation (a zombie reconnecting after its
            // replacement was spawned), duplicate hello, or a link for a
            // worker that no longer needs one: reject by dropping.
            return;
        }
        let mut link = Link { stream, incarnation, last_heard: Instant::now() };
        // The pending Recover travels inside the job frame: the
        // incarnation absorbs it before its first engine step, exactly
        // like the threaded supervisor's broadcast-before-spawn. A
        // separate envelope frame would race the reader thread against
        // the fixpoint loop, and a batch sent before the Recover is
        // absorbed has its Safra send-count erased by the epoch repair.
        let job = match wire::encode_job(
            self.epoch,
            self.specs.len(),
            &self.config.worker,
            &self.specs[index],
            self.pending_recover[index].take().as_ref(),
        ) {
            Ok(job) => job,
            Err(e) => {
                self.abort(index, e);
                return;
            }
        };
        if wire::write_frame(&mut link.stream, wire::FRAME_JOB, &job).is_err() {
            // Died during the handshake; the reader below was never
            // spawned, so classify the death here.
            self.die(index, Error::Runtime(format!("worker {index}: link died during job send")));
            return;
        }
        // Everything relayed here while the link was down, in arrival
        // order: survivors' replays (current epoch) and any pre-crash
        // leftovers (dropped by the worker's epoch filter).
        for body in std::mem::take(&mut self.parked[index]) {
            if wire::write_frame(&mut link.stream, wire::FRAME_ENVELOPE, &body).is_err() {
                self.die(index, Error::Runtime(format!("worker {index}: link died during parked flush")));
                return;
            }
        }
        let reader = match link.stream.try_clone() {
            Ok(reader) => reader,
            Err(e) => {
                self.die(index, Error::Runtime(format!("worker {index}: cloning link: {e}")));
                return;
            }
        };
        let tx = self._ev_tx.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("net-link-{index}"))
            .spawn(move || link_reader(index, incarnation, reader, tx));
        if let Err(e) = spawned {
            self.abort(index, Error::Runtime(format!("spawning link reader: {e}")));
            return;
        }
        if incarnation > 0 {
            self.reconnects += 1;
        }
        self.awaiting[index] = None;
        self.links[index] = Some(link);
    }

    fn on_frame(&mut self, index: usize, incarnation: u64, kind: u8, body: Vec<u8>) {
        let Some(link) = self.links[index].as_mut() else { return };
        if link.incarnation != incarnation {
            return; // A zombie incarnation's leftover traffic.
        }
        link.last_heard = Instant::now();
        if let Some(kill) = self.kill.filter(|k| k.worker == index) {
            let fire = {
                let mut persist = self
                    .persist
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                let seen = {
                    let seen = persist.rx_bytes.entry(index).or_insert(0);
                    *seen += body.len() as u64 + 5;
                    *seen
                };
                let fire = !persist.kill_fired && seen >= kill.after_bytes;
                if fire {
                    persist.kill_fired = true;
                }
                fire
            };
            if fire {
                // A real `kill -9`, mid-protocol, at a deterministic
                // byte offset. The EOF it causes drives the normal
                // death-and-restart path.
                if let Some(handle) = self.handles[index].as_mut() {
                    handle.kill();
                }
            }
        }
        match kind {
            // The relay is the fleet's trust boundary: a frame can be
            // structurally complete yet carry a corrupted body (the
            // garbage fault cuts exactly this shape), so the envelope is
            // fully validated *before* forwarding — corruption kills the
            // sender's link (recoverable), never an innocent receiver.
            // The validated frame is still relayed verbatim, no
            // re-encode.
            wire::FRAME_ENVELOPE => match wire::decode_envelope(&body, &self.interner) {
                Ok((dest, _)) if dest < self.specs.len() => {
                    self.relay_bytes += body.len() as u64 + 5;
                    let delivered = match self.links[dest].as_mut() {
                        None => {
                            // No live link right now: park until the
                            // destination (re)connects. Only a *finished*
                            // destination discards — it has already
                            // terminated and sent its result.
                            if self.finished[dest].is_none() {
                                self.parked[dest].push(body);
                            }
                            true
                        }
                        Some(link) => {
                            wire::write_frame(&mut link.stream, wire::FRAME_ENVELOPE, &body)
                                .is_ok()
                        }
                    };
                    if !delivered && self.finished[dest].is_none() {
                        self.die(
                            dest,
                            Error::Runtime(format!("worker {dest}: link died during relay write")),
                        );
                    }
                }
                _ => self.die(index, Error::Runtime(format!(
                    "worker {index}: corrupt envelope destination"
                ))),
            },
            wire::FRAME_RESULT => match wire::decode_result(&body, &self.interner) {
                Ok((report, pooled)) => {
                    self.finished[index] = Some((report, pooled, Vec::new()));
                }
                Err(e) => self.die(index, e),
            },
            wire::FRAME_ERROR => match wire::decode_error(&body) {
                Ok((true, message)) => self.abort(index, Error::Runtime(message)),
                Ok((false, message)) => self.die(index, Error::Runtime(message)),
                Err(e) => self.die(index, e),
            },
            wire::FRAME_PONG => {
                // last_heard is already refreshed; just insist the reply
                // is well-formed.
                if wire::decode_nonce(&body).is_err() {
                    self.die(index, Error::Runtime(format!("worker {index}: corrupt pong")));
                }
            }
            _ => self.die(index, Error::Runtime(format!(
                "worker {index}: unexpected frame kind {kind}"
            ))),
        }
    }

    /// Handle one worker death: hard-kill the incarnation, then either
    /// restart-with-replay (within budget, mirroring the threaded
    /// supervisor's conditions exactly) or abort the fleet.
    fn die(&mut self, index: usize, error: Error) {
        self.links[index] = None;
        if let Some(handle) = self.handles[index].as_mut() {
            handle.kill();
        }
        self.handles[index] = None;
        self.awaiting[index] = None;
        if self.aborting.is_some() {
            return;
        }
        let within_budget = self.restarts_used[index] < self.config.supervisor.max_restarts
            && self.finished.iter().all(Option::is_none);
        if !within_budget {
            // Budget exhausted, or a peer already terminated (finished
            // workers answer no AckSync, so replay cannot complete).
            self.abort(index, error);
            return;
        }
        self.restarts_used[index] += 1;
        self.total_restarts += 1;
        self.epoch += 1;
        if self.config.trace {
            let now = self.started.elapsed().as_micros() as u64;
            self.transport_events.push(ObsEvent {
                time: now,
                worker: index,
                kind: ObsKind::Crashed,
            });
            self.transport_events.push(ObsEvent {
                time: now,
                worker: index,
                kind: ObsKind::Restarted { epoch: self.epoch },
            });
        }
        let recover = Envelope {
            from: index,
            seq: 0,
            epoch: self.epoch,
            ack: 0,
            message: Message::Recover { epoch: self.epoch, restarted: index },
        };
        // Survivors repair now; the replacement repairs right after its
        // job arrives (see `on_conn`).
        let mut failed = Vec::new();
        for (peer, slot) in self.links.iter_mut().enumerate() {
            if let Some(link) = slot {
                let body = wire::encode_envelope(peer, &recover);
                if wire::write_frame(&mut link.stream, wire::FRAME_ENVELOPE, &body).is_err() {
                    failed.push(peer);
                }
            }
        }
        self.pending_recover[index] = Some(recover);
        let backoff = self.config.supervisor.restart_backoff * self.restarts_used[index];
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        self.incarnations[index] += 1;
        if let Err(e) = self.spawn(index) {
            self.abort(index, e);
            return;
        }
        for peer in failed {
            self.die(peer, Error::Runtime(format!("worker {peer}: recover send failed")));
        }
    }

    fn abort(&mut self, from: usize, error: Error) {
        if self.aborting.is_some() {
            return;
        }
        // Tear the fleet down fast (workers error out on Abort) instead
        // of letting survivors idle into their watchdogs; the hard kill
        // in teardown handles whoever misses the message.
        let abort = Envelope {
            from,
            seq: 0,
            epoch: self.epoch,
            ack: 0,
            message: Message::Abort { reason: error.to_string() },
        };
        for (peer, slot) in self.links.iter_mut().enumerate() {
            if let Some(link) = slot {
                let body = wire::encode_envelope(peer, &abort);
                let _ = wire::write_frame(&mut link.stream, wire::FRAME_ENVELOPE, &body);
            }
        }
        self.aborting = Some(error);
    }

    /// Periodic duties: heartbeat pings, silence detection, and connect
    /// deadlines for launched-but-never-connected incarnations.
    fn tick(&mut self) {
        if self.aborting.is_some() {
            return;
        }
        let mut failed = Vec::new();
        if self.last_ping.elapsed() >= self.net.heartbeat_interval {
            self.last_ping = Instant::now();
            self.nonce += 1;
            let body = wire::encode_nonce(self.nonce);
            for (peer, slot) in self.links.iter_mut().enumerate() {
                if let Some(link) = slot {
                    if wire::write_frame(&mut link.stream, wire::FRAME_PING, &body).is_err() {
                        failed.push((peer, "heartbeat write failed"));
                    }
                }
            }
        }
        for (peer, slot) in self.links.iter().enumerate() {
            if let Some(link) = slot {
                if link.last_heard.elapsed() > self.net.heartbeat_timeout {
                    failed.push((peer, "heartbeat timeout"));
                }
            }
        }
        for (peer, error) in failed {
            if self.finished[peer].is_none() {
                self.die(peer, Error::Runtime(format!("worker {peer}: {error}")));
            } else {
                self.links[peer] = None;
            }
        }
        let deadline = self.net.connect_timeout;
        let overdue: Vec<usize> = self
            .awaiting
            .iter()
            .enumerate()
            .filter_map(|(peer, since)| {
                since
                    .filter(|s| s.elapsed() > deadline && self.links[peer].is_none())
                    .map(|_| peer)
            })
            .collect();
        for peer in overdue {
            self.die(
                peer,
                Error::Runtime(format!(
                    "worker {peer}: incarnation {} never connected within {deadline:?}",
                    self.incarnations[peer]
                )),
            );
        }
    }
}

fn link_reader(index: usize, incarnation: u64, mut stream: TcpStream, tx: Sender<Ev>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some((kind, body))) => {
                if tx.send(Ev::Frame { index, incarnation, kind, body }).is_err() {
                    return;
                }
            }
            Ok(None) => {
                // Clean EOF. If the worker's Result already arrived this
                // is the normal end of a finished link; otherwise the
                // supervisor classifies it as a (recoverable) death.
                let _ = tx.send(Ev::Down {
                    index,
                    incarnation,
                    error: Error::Runtime(format!("worker {index}: link closed")),
                });
                return;
            }
            Err(error) => {
                let _ = tx.send(Ev::Down { index, incarnation, error });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use crate::transport::ThreadedTransport;
    use gst_common::{ituple, Interner};
    use gst_eval::plan::RelationId;
    use gst_storage::Database;

    fn coordinator(launcher: InProcessLauncher) -> NetCoordinator {
        // Short connect budget so failure paths stay fast in CI; the
        // heartbeat machinery keeps its defaults (it never fires on a
        // healthy loopback run).
        let net = NetConfig {
            connect_timeout: Duration::from_secs(5),
            ..NetConfig::default()
        };
        NetCoordinator::new(Arc::new(launcher), net)
    }

    /// Two workers computing transitive closure of a chain split across
    /// them — every derivation needs the other worker's frontier, so the
    /// link carries real traffic in both directions.
    fn chain_fleet(interner: &Interner, edges: i64) -> (Vec<WorkerSpec>, RelationId) {
        let unit0 = gst_frontend::parser::parse_program_with(
            "t0(X,Y) :- e0(X,Y).\n\
             t0(X,Y) :- e0(X,Z), in0(Z,Y).\n\
             ship0(Z,Y) :- t0(Z,Y).",
            interner,
        )
        .unwrap();
        let unit1 = gst_frontend::parser::parse_program_with(
            "t1(X,Y) :- e1(X,Y).\n\
             t1(X,Y) :- e1(X,Z), in1(Z,Y).\n\
             ship1(Z,Y) :- t1(Z,Y).",
            interner,
        )
        .unwrap();
        let e0 = (interner.get("e0").unwrap(), 2);
        let e1 = (interner.get("e1").unwrap(), 2);
        let t0 = (interner.get("t0").unwrap(), 2);
        let t1 = (interner.get("t1").unwrap(), 2);
        let in0 = (interner.intern("in0"), 2);
        let in1 = (interner.intern("in1"), 2);
        let ship0 = (interner.get("ship0").unwrap(), 2);
        let ship1 = (interner.get("ship1").unwrap(), 2);
        let answer = (interner.intern("t"), 2);
        let mut db0 = Database::new(interner.clone());
        let mut db1 = Database::new(interner.clone());
        for k in 0..edges {
            let id = if k % 2 == 0 { e0 } else { e1 };
            let db = if k % 2 == 0 { &mut db0 } else { &mut db1 };
            db.insert(id, ituple![k, k + 1]).unwrap();
        }
        let specs = vec![
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 0,
                    program: unit0.program,
                    outgoing: vec![ChannelOut { channel: ship0, dest: 1, inbox: in1 }],
                    inboxes: vec![in0],
                    processing_rules: vec![0, 1],
                    pooling: vec![(t0, answer)],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(db0),
                session: None,
            },
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 1,
                    program: unit1.program,
                    outgoing: vec![ChannelOut { channel: ship1, dest: 0, inbox: in0 }],
                    inboxes: vec![in1],
                    processing_rules: vec![0, 1],
                    pooling: vec![(t1, answer)],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(db1),
                session: None,
            },
        ];
        (specs, answer)
    }

    #[test]
    fn fault_and_kill_grammars_round_trip() {
        for spec in ["delay@500", "disconnect@2048", "truncate@77", "garbage@0"] {
            assert_eq!(NetFault::parse(spec).unwrap().render(), spec);
        }
        assert!(NetFault::parse("explode@3").is_err());
        assert!(NetFault::parse("disconnect@many").is_err());
        assert!(NetFault::parse("disconnect").is_err());

        let plan = NetFaultPlan::parse("1:disconnect@2048,0:delay@500!").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                FaultEntry { worker: 1, fault: NetFault::Disconnect(2048), persistent: false },
                FaultEntry { worker: 0, fault: NetFault::Delay(500), persistent: true },
            ]
        );
        assert_eq!(plan.fault_for(1, true), Some(NetFault::Disconnect(2048)));
        assert_eq!(plan.fault_for(1, false), None, "one-shot: first spawn only");
        assert_eq!(plan.fault_for(0, false), Some(NetFault::Delay(500)), "persistent");
        assert_eq!(plan.fault_for(2, true), None);
        assert!(NetFaultPlan::parse("").unwrap().faults.is_empty());
        assert!(NetFaultPlan::parse("nope").is_err());

        let kill = KillSpec::parse("1@4096").unwrap();
        assert_eq!(kill, KillSpec { worker: 1, after_bytes: 4096 });
        assert!(KillSpec::parse("1").is_err());
        assert!(KillSpec::parse("x@9").is_err());
    }

    #[test]
    fn worker_args_round_trip_through_the_cli_grammar() {
        let args = NetWorkerArgs {
            connect: "127.0.0.1:4545".into(),
            index: 3,
            incarnation: 2,
            net: NetConfig {
                heartbeat_timeout: Duration::from_millis(1234),
                connect_timeout: Duration::from_millis(777),
                connect_backoff: Duration::from_millis(9),
                connect_backoff_cap: Duration::from_millis(99),
                ..NetConfig::default()
            },
            fault: Some(NetFault::Garbage(64)),
        };
        let parsed = NetWorkerArgs::parse(&args.to_args()).unwrap();
        assert_eq!(parsed.connect, args.connect);
        assert_eq!(parsed.index, 3);
        assert_eq!(parsed.incarnation, 2);
        assert_eq!(parsed.net.heartbeat_timeout, Duration::from_millis(1234));
        assert_eq!(parsed.net.connect_timeout, Duration::from_millis(777));
        assert_eq!(parsed.net.connect_backoff, Duration::from_millis(9));
        assert_eq!(parsed.net.connect_backoff_cap, Duration::from_millis(99));
        assert_eq!(parsed.fault, Some(NetFault::Garbage(64)));
        assert!(NetWorkerArgs::parse(&["--index".into(), "0".into()]).is_err());
        assert!(NetWorkerArgs::parse(&["--connect".into()]).is_err());
        assert!(NetWorkerArgs::parse(&["--bogus".into(), "1".into()]).is_err());
    }

    /// The TCP transport computes the same least model as the threaded
    /// one on a communicating fleet, and its relay actually carried the
    /// traffic (bytes on the wire, reconnect-free).
    #[test]
    fn tcp_loopback_matches_threaded_transport() {
        let interner = Interner::new();
        let (specs, answer) = chain_fleet(&interner, 12);
        let config = RuntimeConfig::default();
        let baseline = ThreadedTransport.execute(specs.clone(), &config).unwrap();
        let outcome = coordinator(InProcessLauncher::default())
            .execute(specs, &config)
            .unwrap();
        assert!(outcome.relation(answer).set_eq(&baseline.relation(answer)));
        assert_eq!(outcome.relation(answer).len(), (12 * 13 / 2) as usize);
        assert_eq!(outcome.stats.restarts, 0);
        assert_eq!(outcome.stats.reconnects, 0);
        assert!(outcome.stats.relay_bytes > 0, "envelopes crossed the relay");
        assert!(outcome.stats.total_tuples_sent() > 0);
        assert_eq!(outcome.stats.workers.len(), 2);
    }

    /// Every write-side fault kind — abrupt disconnect, mid-frame
    /// truncation, garbage injection — is detected as a recoverable link
    /// death; the restarted incarnation replays and the fleet still
    /// reaches the exact least model.
    #[test]
    fn socket_faults_recover_to_the_exact_least_model() {
        let interner = Interner::new();
        let (specs, answer) = chain_fleet(&interner, 12);
        let config = RuntimeConfig::default();
        let baseline = ThreadedTransport.execute(specs.clone(), &config).unwrap();
        for fault in ["1:disconnect@150", "1:truncate@150", "1:garbage@150"] {
            let coord = coordinator(InProcessLauncher::default())
                .with_faults(NetFaultPlan::parse(fault).unwrap());
            let outcome = coord.execute(specs.clone(), &config).unwrap();
            assert!(
                outcome.relation(answer).set_eq(&baseline.relation(answer)),
                "{fault}: recovery must reach the exact least model"
            );
            assert_eq!(outcome.stats.restarts, 1, "{fault}: exactly one restart");
            assert_eq!(outcome.stats.reconnects, 1, "{fault}: replacement reconnected");
            assert!(
                outcome.stats.total_replayed_batches() > 0,
                "{fault}: survivors replayed from their logs"
            );
        }
    }

    /// A persistent fault kills every incarnation: the restart budget
    /// runs out and the run fails fast with a typed error — no hang, no
    /// panic.
    #[test]
    fn persistent_fault_exhausts_the_budget_cleanly() {
        let interner = Interner::new();
        let (specs, _) = chain_fleet(&interner, 12);
        let mut config = RuntimeConfig::default();
        config.worker.idle_watchdog = Duration::from_secs(300);
        let coord = coordinator(InProcessLauncher::default())
            .with_faults(NetFaultPlan::parse("1:disconnect@150!").unwrap());
        let started = Instant::now();
        let err = coord.execute(specs, &config).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "budget exhaustion must fail fast, not hang"
        );
        let message = err.to_string();
        assert!(
            message.contains("link") || message.contains("frame") || message.contains("EOF"),
            "the link-level cause must surface: {message}"
        );
    }

    /// A connect-phase delay exercises the worker's retry/backoff loop
    /// (the coordinator keeps listening); the run converges with no
    /// restart at all.
    #[test]
    fn delayed_connect_is_absorbed_by_backoff() {
        let interner = Interner::new();
        let (specs, answer) = chain_fleet(&interner, 6);
        let config = RuntimeConfig::default();
        let coord = coordinator(InProcessLauncher::default())
            .with_faults(NetFaultPlan::parse("0:delay@150").unwrap());
        let outcome = coord.execute(specs, &config).unwrap();
        assert_eq!(outcome.stats.restarts, 0);
        assert_eq!(outcome.relation(answer).len(), 6 * 7 / 2);
    }

    /// Tracing a recovered run records the transport-level crash and
    /// restart lifecycle events.
    #[test]
    fn traced_recovery_journals_crash_and_restart() {
        let interner = Interner::new();
        let (specs, _) = chain_fleet(&interner, 12);
        let config = RuntimeConfig { trace: true, ..RuntimeConfig::default() };
        let coord = coordinator(InProcessLauncher::default())
            .with_faults(NetFaultPlan::parse("1:disconnect@150").unwrap());
        let outcome = coord.execute(specs, &config).unwrap();
        let kinds: Vec<_> = outcome
            .journal
            .events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::Crashed | ObsKind::Restarted { .. }))
            .map(|e| (e.worker, e.kind.clone()))
            .collect();
        assert!(
            kinds.contains(&(1, ObsKind::Crashed)),
            "journal must record the crash: {kinds:?}"
        );
        assert!(
            kinds.iter().any(|(w, k)| *w == 1 && matches!(k, ObsKind::Restarted { .. })),
            "journal must record the restart: {kinds:?}"
        );
    }
}
