//! Rule → join-plan compilation.
//!
//! A [`RulePlan`] evaluates one rule body left-to-right with sideways
//! information passing: each atom becomes a [`PlanStep::Scan`] that probes
//! a hash index on the columns bound by earlier steps, binds the atom's
//! fresh variables, and hands the extended binding to the next step.
//!
//! Constraint literals (the discriminating conditions `h(v(r)) = i`) are
//! scheduled *eagerly*: each is placed immediately after the step that
//! binds the last of its variables. This implements the paper's §3
//! observation that the selection `σ_{h(v(r))=i}` must be pushed into the
//! join — when the discriminating variables appear in a body atom, tuples
//! failing the hash test are discarded before they multiply downstream
//! join work. A constraint whose variables never appear in any body atom
//! is rejected, mirroring the paper's requirement that "all the variables
//! appearing in a discriminating sequence ... must also appear in at least
//! one atom in the body".
//!
//! For semi-naive evaluation, [`compile_rule`] produces one plan per
//! occurrence of a derived predicate in the body (the *delta versions*):
//! version `j` reads occurrence `j` from the delta, occurrences before `j`
//! from the full relation, and occurrences after `j` from the previous
//! round's relation, so every derivation fires exactly once across
//! versions — the property the paper's non-redundancy accounting
//! (Definition 1) presumes of the sequential baseline.

use gst_common::{Error, FxHashMap, Result, SymbolId, Value};
use gst_frontend::ast::{Atom, ConstraintRef, Literal, Rule, Term, Variable};

/// Identifies a stored relation: interned name + arity.
pub type RelationId = (SymbolId, usize);

/// Which population of a relation a scan reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomSource {
    /// A base (extensional) relation; immutable during evaluation.
    Edb,
    /// Everything derived so far for an intensional predicate (`T_i`).
    IdbFull,
    /// Tuples first derived in the previous round (`ΔT_i`).
    IdbDelta,
    /// The round-before state (`T_{i-1} = T_i ∖ ΔT_i`).
    IdbOld,
}

/// Where a probe-key component comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySource {
    /// A variable bound by an earlier step (slot index).
    Slot(usize),
    /// A constant written in the rule.
    Const(Value),
}

/// One relational subgoal, compiled.
#[derive(Debug, Clone)]
pub struct ScanStep {
    /// Relation to read.
    pub relation: RelationId,
    /// Population to read.
    pub source: AtomSource,
    /// Columns forming the probe key (empty ⇒ full scan).
    pub probe_columns: Vec<usize>,
    /// Value sources for the probe key, aligned with `probe_columns`.
    pub probe_values: Vec<KeySource>,
    /// `(column, slot)`: columns binding fresh variables.
    pub bindings: Vec<(usize, usize)>,
    /// `(column, earlier_column)`: intra-atom repeated variables that must
    /// match the column of their first occurrence in this same atom.
    pub intra_checks: Vec<(usize, usize)>,
}

/// One compiled body item.
#[derive(Clone)]
pub enum PlanStep {
    /// Join against a relation.
    Scan(ScanStep),
    /// Evaluate an opaque constraint over bound slots.
    Filter {
        /// The constraint to test.
        constraint: ConstraintRef,
        /// Slot of each constraint variable, in the constraint's order.
        slots: Vec<usize>,
    },
}

impl std::fmt::Debug for PlanStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanStep::Scan(s) => f.debug_tuple("Scan").field(s).finish(),
            PlanStep::Filter { slots, .. } => {
                f.debug_struct("Filter").field("slots", slots).finish()
            }
        }
    }
}

/// How each head position is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadTerm {
    /// Copy the value bound in a slot.
    Slot(usize),
    /// Emit a constant.
    Const(Value),
}

/// A fully compiled rule.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// Head relation the plan emits into.
    pub head: RelationId,
    /// Head tuple recipe.
    pub head_terms: Vec<HeadTerm>,
    /// Body steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// Number of variable slots the executor must allocate.
    pub slot_count: usize,
    /// Index of the source rule within its program.
    pub rule_index: usize,
    /// Which derived-occurrence reads the delta (`None` for rules with no
    /// derived body atoms, i.e. fired once at bootstrap).
    pub delta_version: Option<usize>,
}

/// Planner knobs, exposed so the benchmark suite can ablate the two
/// optimizations the engine relies on. Production callers use
/// [`PlanOptions::default`] (both on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Move the delta atom to the front of the join order and add the
    /// remaining atoms greedily by connectivity. Off = keep source order
    /// (each round then rescans static relations).
    pub delta_leading: bool,
    /// Place each constraint literal immediately after the step binding
    /// its last variable (the paper's "pushing the selection into the
    /// joins", §3). Off = evaluate all constraints after the full join.
    pub eager_constraints: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            delta_leading: true,
            eager_constraints: true,
        }
    }
}

/// Compile one delta version of `rule` with default [`PlanOptions`].
///
/// `is_idb` decides whether a body atom reads a derived relation;
/// `delta_version = Some(j)` makes the `j`-th derived occurrence (0-based,
/// counting only derived atoms) read [`AtomSource::IdbDelta`], earlier
/// ones [`AtomSource::IdbFull`] and later ones [`AtomSource::IdbOld`].
/// `delta_version = None` compiles every derived occurrence as
/// [`AtomSource::IdbFull`] (naive evaluation / bootstrap).
pub fn compile_rule(
    rule: &Rule,
    rule_index: usize,
    is_idb: &dyn Fn(RelationId) -> bool,
    delta_version: Option<usize>,
) -> Result<RulePlan> {
    compile_rule_with(rule, rule_index, is_idb, delta_version, PlanOptions::default())
}

/// [`compile_rule`] with explicit [`PlanOptions`].
pub fn compile_rule_with(
    rule: &Rule,
    rule_index: usize,
    is_idb: &dyn Fn(RelationId) -> bool,
    delta_version: Option<usize>,
    options: PlanOptions,
) -> Result<RulePlan> {
    // ---- collect atoms (with their semi-naive sources) and constraints.
    let mut atoms: Vec<(&Atom, AtomSource)> = Vec::new();
    let mut constraints: Vec<ConstraintRef> = Vec::new();
    let mut idb_occurrence = 0usize;
    for literal in &rule.body {
        match literal {
            Literal::Atom(atom) => {
                let rel: RelationId = (atom.predicate, atom.terms.len());
                let source = if is_idb(rel) {
                    let src = match delta_version {
                        None => AtomSource::IdbFull,
                        Some(j) if idb_occurrence < j => AtomSource::IdbFull,
                        Some(j) if idb_occurrence == j => AtomSource::IdbDelta,
                        Some(_) => AtomSource::IdbOld,
                    };
                    idb_occurrence += 1;
                    src
                } else {
                    AtomSource::Edb
                };
                atoms.push((atom, source));
            }
            Literal::Constraint(c) => constraints.push(c.clone()),
        }
    }

    // ---- join ordering. The delta atom leads: semi-naive rounds must
    // cost in proportion to the delta, not to the static relations (a
    // full first-atom scan every round makes the fixpoint quadratic and
    // destroys parallel scaling — each worker would rescan the shared
    // base). Remaining atoms are added greedily by connectivity: most
    // already-bound variables first, original order as tie-break.
    let order: Vec<usize> = if atoms.is_empty() {
        Vec::new()
    } else if !options.delta_leading {
        (0..atoms.len()).collect()
    } else {
        let seed = atoms
            .iter()
            .position(|(_, src)| *src == AtomSource::IdbDelta)
            .unwrap_or(0);
        let mut chosen = vec![seed];
        let mut bound: Vec<Variable> = atoms[seed].0.variables().collect();
        while chosen.len() < atoms.len() {
            let next = (0..atoms.len())
                .filter(|i| !chosen.contains(i))
                .max_by_key(|&i| {
                    let shared = atoms[i]
                        .0
                        .variables()
                        .filter(|v| bound.contains(v))
                        .count();
                    // Prefer connectivity; tie-break toward source order.
                    (shared, usize::MAX - i)
                })
                .expect("unchosen atom exists");
            bound.extend(atoms[next].0.variables());
            chosen.push(next);
        }
        chosen
    };

    // ---- compile scans in the chosen order, placing each constraint as
    // soon as its variables are bound (pushing selections into joins).
    let mut slots: FxHashMap<Variable, usize> = FxHashMap::default();
    let mut steps: Vec<PlanStep> = Vec::with_capacity(rule.body.len());
    let mut waiting: Vec<ConstraintRef> = constraints;

    for &ai in &order {
        let (atom, source) = (atoms[ai].0, atoms[ai].1);
        let rel: RelationId = (atom.predicate, atom.terms.len());
        let mut probe_columns = Vec::new();
        let mut probe_values = Vec::new();
        let mut bindings = Vec::new();
        let mut intra_checks = Vec::new();
        // First occurrence column of each variable *within this atom*.
        let mut first_in_atom: FxHashMap<Variable, usize> = FxHashMap::default();

        for (col, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    probe_columns.push(col);
                    probe_values.push(KeySource::Const(*c));
                }
                Term::Var(v) => {
                    // A repeat within this atom must be an intra check
                    // even though the variable now has a slot: the slot
                    // is written by *this* step, so it cannot feed this
                    // step's probe key.
                    if let Some(&first) = first_in_atom.get(v) {
                        intra_checks.push((col, first));
                    } else if let Some(&slot) = slots.get(v) {
                        probe_columns.push(col);
                        probe_values.push(KeySource::Slot(slot));
                    } else {
                        first_in_atom.insert(*v, col);
                        let slot = slots.len();
                        slots.insert(*v, slot);
                        bindings.push((col, slot));
                    }
                }
            }
        }

        steps.push(PlanStep::Scan(ScanStep {
            relation: rel,
            source,
            probe_columns,
            probe_values,
            bindings,
            intra_checks,
        }));

        // Place any waiting constraints whose variables are now all
        // bound, preserving their relative order. With eager placement
        // off, everything is deferred to the end of the join.
        if options.eager_constraints {
            let mut still_waiting = Vec::new();
            for c in waiting.drain(..) {
                if c.variables().iter().all(|v| slots.contains_key(v)) {
                    let cslots = c.variables().iter().map(|v| slots[v]).collect();
                    steps.push(PlanStep::Filter {
                        constraint: c,
                        slots: cslots,
                    });
                } else {
                    still_waiting.push(c);
                }
            }
            waiting = still_waiting;
        }
    }

    if !options.eager_constraints {
        // Late placement: all constraints after the complete join.
        let (placeable, unbound): (Vec<_>, Vec<_>) = waiting
            .drain(..)
            .partition(|c| c.variables().iter().all(|v| slots.contains_key(v)));
        for c in placeable {
            let cslots = c.variables().iter().map(|v| slots[v]).collect();
            steps.push(PlanStep::Filter {
                constraint: c,
                slots: cslots,
            });
        }
        waiting = unbound;
    }

    if !waiting.is_empty() {
        return Err(Error::Discriminator(
            "a constraint references variables that appear in no body atom \
             (discriminating variables must appear in the rule body)"
                .into(),
        ));
    }

    let mut head_terms = Vec::with_capacity(rule.head.terms.len());
    for term in &rule.head.terms {
        match term {
            Term::Const(c) => head_terms.push(HeadTerm::Const(*c)),
            Term::Var(v) => {
                let slot = slots.get(v).ok_or_else(|| {
                    Error::Analysis("unsafe rule reached the planner".into())
                })?;
                head_terms.push(HeadTerm::Slot(*slot));
            }
        }
    }

    Ok(RulePlan {
        head: (rule.head.predicate, rule.head.terms.len()),
        head_terms,
        steps,
        slot_count: slots.len(),
        rule_index,
        delta_version,
    })
}

/// Count the derived-predicate occurrences in `rule`'s body; this is how
/// many delta versions semi-naive evaluation compiles for it.
pub fn idb_occurrence_count(rule: &Rule, is_idb: &dyn Fn(RelationId) -> bool) -> usize {
    rule.body_atoms()
        .filter(|a| is_idb((a.predicate, a.terms.len())))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::Interner;
    use gst_frontend::parse_program;
    use gst_frontend::Constraint;
    use std::sync::Arc;

    struct AlwaysTrue {
        vars: Vec<Variable>,
    }

    impl Constraint for AlwaysTrue {
        fn variables(&self) -> &[Variable] {
            &self.vars
        }
        fn holds(&self, _bound: &[Value]) -> bool {
            true
        }
        fn describe(&self, _interner: &Interner) -> String {
            "true".into()
        }
    }

    fn ancestor() -> gst_frontend::Program {
        parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        )
        .unwrap()
        .program
    }

    fn idb_of(program: &gst_frontend::Program) -> impl Fn(RelationId) -> bool + '_ {
        let derived: Vec<RelationId> = program
            .derived_predicates()
            .into_iter()
            .map(|p| (p.name, p.arity))
            .collect();
        move |rel| derived.contains(&rel)
    }

    #[test]
    fn linear_rule_has_one_delta_version() {
        let p = ancestor();
        let is_idb = idb_of(&p);
        assert_eq!(idb_occurrence_count(&p.rules[0], &is_idb), 0);
        assert_eq!(idb_occurrence_count(&p.rules[1], &is_idb), 1);
    }

    #[test]
    fn delta_version_marks_sources_and_leads() {
        let p = ancestor();
        let is_idb = idb_of(&p);
        let plan = compile_rule(&p.rules[1], 1, &is_idb, Some(0)).unwrap();
        let sources: Vec<AtomSource> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Scan(sc) => Some(sc.source),
                _ => None,
            })
            .collect();
        // The delta atom is moved to the front of the join order so each
        // round costs in proportion to the delta.
        assert_eq!(sources, vec![AtomSource::IdbDelta, AtomSource::Edb]);
    }

    #[test]
    fn nonlinear_versions_use_full_delta_old() {
        let p = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- anc(X,Z), anc(Z,Y).",
        )
        .unwrap()
        .program;
        let is_idb = idb_of(&p);
        let v0 = compile_rule(&p.rules[1], 1, &is_idb, Some(0)).unwrap();
        let v1 = compile_rule(&p.rules[1], 1, &is_idb, Some(1)).unwrap();
        let srcs = |plan: &RulePlan| -> Vec<AtomSource> {
            plan.steps
                .iter()
                .filter_map(|s| match s {
                    PlanStep::Scan(sc) => Some(sc.source),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(srcs(&v0), vec![AtomSource::IdbDelta, AtomSource::IdbOld]);
        // Version 1's delta atom (second occurrence) leads the join.
        assert_eq!(srcs(&v1), vec![AtomSource::IdbDelta, AtomSource::IdbFull]);
    }

    #[test]
    fn sideways_binding_produces_probe() {
        let p = ancestor();
        let is_idb = idb_of(&p);
        let plan = compile_rule(&p.rules[1], 1, &is_idb, Some(0)).unwrap();
        // Step 0: Δanc(Z, Y) leads — full scan of the delta, binds Z, Y.
        let PlanStep::Scan(s0) = &plan.steps[0] else { panic!() };
        assert_eq!(s0.source, AtomSource::IdbDelta);
        assert!(s0.probe_columns.is_empty());
        assert_eq!(s0.bindings, vec![(0, 0), (1, 1)]);
        // Step 1: par(X, Z) — Z is bound (slot 0), probe column 1.
        let PlanStep::Scan(s1) = &plan.steps[1] else { panic!() };
        assert_eq!(s1.probe_columns, vec![1]);
        assert_eq!(s1.probe_values, vec![KeySource::Slot(0)]);
        assert_eq!(s1.bindings, vec![(0, 2)]);
        assert_eq!(plan.slot_count, 3);
        // Head anc(X, Y): X = slot 2 (bound by par), Y = slot 1.
        assert_eq!(plan.head_terms, vec![HeadTerm::Slot(2), HeadTerm::Slot(1)]);
    }

    #[test]
    fn constants_become_probe_keys() {
        let p = parse_program("q(X) :- e(X, 7, alice).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let PlanStep::Scan(s) = &plan.steps[0] else { panic!() };
        assert_eq!(s.probe_columns, vec![1, 2]);
        assert!(matches!(s.probe_values[0], KeySource::Const(Value::Int(7))));
        assert!(matches!(s.probe_values[1], KeySource::Const(Value::Sym(_))));
    }

    #[test]
    fn intra_atom_repeat_becomes_check() {
        let p = parse_program("q(X) :- e(X, X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let PlanStep::Scan(s) = &plan.steps[0] else { panic!() };
        assert_eq!(s.bindings, vec![(0, 0)]);
        assert_eq!(s.intra_checks, vec![(1, 0)]);
    }

    #[test]
    fn constraint_is_placed_after_binding_step() {
        // body: constraint(Z) inserted syntactically first but Z binds in
        // the second atom — the filter must land after that scan.
        let unit = parse_program("t(X) :- a(X), b(X, Z).").unwrap();
        let p = unit.program;
        let z = Variable(p.interner.get("Z").unwrap());
        let c: ConstraintRef = Arc::new(AlwaysTrue { vars: vec![z] });
        let mut rule = p.rules[0].clone();
        rule.body.insert(0, Literal::Constraint(c));
        let plan = compile_rule(&rule, 0, &|_| false, None).unwrap();
        let kinds: Vec<&str> = plan
            .steps
            .iter()
            .map(|s| match s {
                PlanStep::Scan(_) => "scan",
                PlanStep::Filter { .. } => "filter",
            })
            .collect();
        assert_eq!(kinds, vec!["scan", "scan", "filter"]);
    }

    #[test]
    fn constraint_on_absent_variable_is_rejected() {
        let unit = parse_program("t(X) :- a(X).").unwrap();
        let p = unit.program;
        let w = Variable(p.interner.intern("W"));
        let c: ConstraintRef = Arc::new(AlwaysTrue { vars: vec![w] });
        let mut rule = p.rules[0].clone();
        rule.body.push(Literal::Constraint(c));
        let err = compile_rule(&rule, 0, &|_| false, None).unwrap_err();
        assert!(err.to_string().contains("discriminating variables"));
    }

    #[test]
    fn source_order_option_keeps_written_order() {
        let p = ancestor();
        let is_idb = idb_of(&p);
        let opts = PlanOptions {
            delta_leading: false,
            eager_constraints: true,
        };
        let plan = compile_rule_with(&p.rules[1], 1, &is_idb, Some(0), opts).unwrap();
        let sources: Vec<AtomSource> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Scan(sc) => Some(sc.source),
                _ => None,
            })
            .collect();
        // Written order: par first, then the delta atom.
        assert_eq!(sources, vec![AtomSource::Edb, AtomSource::IdbDelta]);
    }

    #[test]
    fn late_constraints_option_defers_filters() {
        let unit = parse_program("t(X) :- a(X), b(X, Z).").unwrap();
        let p = unit.program;
        let x = Variable(p.interner.get("X").unwrap());
        let c: ConstraintRef = Arc::new(AlwaysTrue { vars: vec![x] });
        let mut rule = p.rules[0].clone();
        rule.body.insert(0, Literal::Constraint(c));
        let opts = PlanOptions {
            delta_leading: true,
            eager_constraints: false,
        };
        let plan = compile_rule_with(&rule, 0, &|_| false, None, opts).unwrap();
        let kinds: Vec<&str> = plan
            .steps
            .iter()
            .map(|s| match s {
                PlanStep::Scan(_) => "scan",
                PlanStep::Filter { .. } => "filter",
            })
            .collect();
        // X binds at the first scan, but the filter still lands last.
        assert_eq!(kinds, vec!["scan", "scan", "filter"]);
    }

    #[test]
    fn options_do_not_change_results() {
        // Differential check at the plan level is done by the engine
        // tests; here: unbound constraint still rejected under late mode.
        let unit = parse_program("t(X) :- a(X).").unwrap();
        let p = unit.program;
        let w = Variable(p.interner.intern("W"));
        let c: ConstraintRef = Arc::new(AlwaysTrue { vars: vec![w] });
        let mut rule = p.rules[0].clone();
        rule.body.push(Literal::Constraint(c));
        let opts = PlanOptions {
            delta_leading: false,
            eager_constraints: false,
        };
        assert!(compile_rule_with(&rule, 0, &|_| false, None, opts).is_err());
    }

    #[test]
    fn head_constant_is_emitted() {
        let p = parse_program("t(X, 9) :- a(X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        assert_eq!(
            plan.head_terms,
            vec![HeadTerm::Slot(0), HeadTerm::Const(Value::Int(9))]
        );
    }
}
