//! Differential acceptance suite for incremental view maintenance.
//!
//! The update session (DRed over the parallel runtime; see DESIGN.md
//! §11) claims that after *any* stream of base-fact insert/delete
//! batches, the maintained view is bit-identical to recomputing the
//! source program from scratch over the updated database. These tests
//! check exactly that, the brute-force way: seeded random update
//! streams over the standard workload shapes (chain, grid, random
//! digraph), every batch followed by a full sequential recompute that
//! the maintained answer must equal as a set — on the threaded
//! transport *and* under the deterministic simulation transport, for
//! more than 200 seeds in total.
//!
//! The streams are adversarial on purpose: deletes target *existing*
//! edges most of the time (so over-deletion cones are non-trivial),
//! re-insertion of just-deleted edges is common (so rederivation and
//! tombstone-slot reuse are exercised), and some deletes are of absent
//! tuples (no-ops that must not perturb the view).

use std::sync::Arc;

use gst_common::{ituple, SmallRng, Tuple};
use gst_core::prelude::{
    rewrite_general, DiscriminatorRef, HashMod, RuleChoice, UpdateBatch, UpdateSession,
};
use gst_core::schemes::BaseDistribution;
use gst_core::session::RoundReport;
use gst_eval::seminaive_eval;
use gst_eval::plan::RelationId;
use gst_frontend::Variable;
use gst_runtime::{RuntimeConfig, SimTransport, ThreadedTransport, Transport};
use gst_storage::Relation;
use gst_workloads::{chain, grid, linear_ancestor, random_digraph, Fixture};

/// The workload shapes the streams mutate. Small on purpose: each seed
/// runs several full fixpoints plus one sequential recompute per batch.
fn workloads() -> Vec<(&'static str, Relation, u64)> {
    vec![
        // (name, initial edges, node-universe size for random ops)
        ("chain", chain(10), 14),
        ("grid", grid(3, 4), 16),
        ("random", random_digraph(12, 22, 5), 14),
    ]
}

/// Transitive closure over 3 workers through the §7 general scheme,
/// wrapped in an update session.
fn tc_session(fx: &Fixture, edges: &Relation, disc_seed: u64) -> UpdateSession {
    let db = fx.database(edges);
    let h: DiscriminatorRef = Arc::new(HashMod::new(3, disc_seed));
    let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
    let choices = vec![
        RuleChoice { v: vec![var("Y")], h: h.clone() },
        RuleChoice { v: vec![var("Z")], h },
    ];
    let scheme =
        rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
    UpdateSession::new(&scheme, &fx.program, &db).unwrap()
}

/// One seeded random batch: mostly deletes of live edges and inserts of
/// fresh pairs, with a sprinkle of absent-tuple deletes (no-ops) and
/// re-inserts of tuples deleted in the same batch.
fn random_batch(rng: &mut SmallRng, session: &UpdateSession, edge: RelationId, nodes: u64) -> UpdateBatch {
    let live: Vec<Tuple> = session
        .edb()
        .relation(edge)
        .map(|r| r.iter().cloned().collect())
        .unwrap_or_default();
    let mut batch = UpdateBatch::default();
    for _ in 0..rng.gen_inclusive(1, 5) {
        match rng.gen_below(10) {
            // Delete a live edge (the interesting case: a real cone).
            0..=3 => {
                if let Some(t) = rng.choose(&live) {
                    batch.deletes.push((edge, t.clone()));
                }
            }
            // Delete an absent edge: must be a no-op.
            4 => {
                let (a, b) = (rng.gen_below(nodes) as i64, rng.gen_below(nodes) as i64);
                batch.deletes.push((edge, ituple![a + 100, b + 100]));
            }
            // Re-insert something deleted earlier in this very batch.
            5 => {
                if let Some((p, t)) = rng.choose(&batch.deletes).cloned() {
                    batch.inserts.push((p, t));
                }
            }
            // Insert a random pair from the node universe.
            _ => {
                let (a, b) = (rng.gen_below(nodes) as i64, rng.gen_below(nodes) as i64);
                batch.inserts.push((edge, ituple![a, b]));
            }
        }
    }
    batch
}

/// Drive one seeded stream through a session on the given transport,
/// asserting the maintained view equals a from-scratch recompute after
/// every single batch. Returns the per-round reports for meta-checks.
fn check_stream<T: Transport + ?Sized>(
    label: &str,
    seed: u64,
    edges: &Relation,
    nodes: u64,
    batches: usize,
    transport: &T,
) -> Vec<RoundReport> {
    let fx = linear_ancestor();
    let (anc, edge) = (fx.output_id(), fx.input_id(0));
    let mut session = tc_session(&fx, edges, seed ^ 0x9e37);
    let config = RuntimeConfig::default();
    session.initialize(transport, &config).unwrap();

    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 1..=batches {
        let batch = random_batch(&mut rng, &session, edge, nodes);
        session.apply(&batch, transport, &config).unwrap();
        let oracle = seminaive_eval(&fx.program, session.edb()).unwrap();
        let maintained = session.answer(anc);
        assert!(
            maintained.set_eq(&oracle.relation(anc)),
            "{label} seed {seed} round {round}: maintained view diverged \
             ({} vs {} tuples) after {:?}",
            maintained.len(),
            oracle.relation(anc).len(),
            batch
        );
    }
    session.reports().to_vec()
}

/// 120 seeded streams (3 workloads × 40 seeds) × 3 batches each on the
/// threaded transport: every batch's maintained view equals the
/// recompute-from-scratch oracle.
#[test]
fn threaded_streams_match_recompute() {
    let transport = ThreadedTransport;
    let mut overdeleted = 0u64;
    let mut rederived = 0u64;
    for (name, edges, nodes) in &workloads() {
        for seed in 0..40 {
            for r in check_stream(name, seed, edges, *nodes, 3, &transport) {
                overdeleted += r.overdeleted;
                rederived += r.rederive_seeds;
            }
        }
    }
    // The sweep is only meaningful if the streams actually exercised
    // the DRed machinery: cones must have been cut and support rebuilt.
    assert!(overdeleted > 0, "no stream ever over-deleted anything");
    assert!(rederived > 0, "no stream ever rederived from surviving support");
}

/// 120 more seeded streams (3 workloads × 40 seeds, disjoint from the
/// threaded range) under the deterministic simulation transport: the
/// virtual-clock scheduler reorders every phase's deliveries, and the
/// maintained view must still equal the oracle after every batch.
#[test]
fn simulated_streams_match_recompute() {
    for (name, edges, nodes) in &workloads() {
        for seed in 1000u64..1040 {
            let transport = SimTransport::new(seed.wrapping_mul(0x2545f4914f6cdd1d));
            check_stream(name, seed, edges, *nodes, 3, &transport);
        }
    }
}

/// A long single stream: 40 consecutive batches on one session (chain
/// start), alternating growth and decay so the view both expands and
/// collapses. State carried across 40 rounds must never drift from the
/// oracle, and tombstone reuse must keep the arena from diverging.
#[test]
fn long_stream_does_not_drift() {
    let fx = linear_ancestor();
    let (anc, edge) = (fx.output_id(), fx.input_id(0));
    let edges = chain(8);
    let mut session = tc_session(&fx, &edges, 77);
    let transport = ThreadedTransport;
    let config = RuntimeConfig::default();
    session.initialize(&transport, &config).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xdecaf);
    for round in 1..=40 {
        let batch = random_batch(&mut rng, &session, edge, 12);
        session.apply(&batch, &transport, &config).unwrap();
        let oracle = seminaive_eval(&fx.program, session.edb()).unwrap();
        assert!(
            session.answer(anc).set_eq(&oracle.relation(anc)),
            "round {round}: long-running session drifted from the oracle"
        );
    }
    assert_eq!(session.rounds(), 41);
}

/// The empty batch and the all-absent-deletes batch are observable
/// no-ops: no phases run, the view is untouched.
#[test]
fn degenerate_batches_are_no_ops() {
    let fx = linear_ancestor();
    let (anc, edge) = (fx.output_id(), fx.input_id(0));
    let mut session = tc_session(&fx, &chain(6), 3);
    let transport = ThreadedTransport;
    let config = RuntimeConfig::default();
    session.initialize(&transport, &config).unwrap();
    let before = session.answer(anc);

    let empty = UpdateBatch::default();
    let r = session.apply(&empty, &transport, &config).unwrap().clone();
    assert!(r.phase_a.is_none() && r.phase_b.is_none());

    let phantom = UpdateBatch {
        inserts: vec![],
        deletes: vec![(edge, ituple![404, 404])],
    };
    let r = session.apply(&phantom, &transport, &config).unwrap().clone();
    assert_eq!((r.deleted_base, r.overdeleted), (0, 0));
    assert!(session.answer(anc).set_eq(&before));
}

/// Deleting every base fact and reinserting the original set round-trips
/// to exactly the initial view — the maintained state fully collapses
/// (every derived tuple tombstoned) and fully rebuilds.
#[test]
fn full_collapse_and_rebuild_roundtrips() {
    let fx = linear_ancestor();
    let (anc, edge) = (fx.output_id(), fx.input_id(0));
    let edges = grid(3, 3);
    let mut session = tc_session(&fx, &edges, 11);
    let transport = ThreadedTransport;
    let config = RuntimeConfig::default();
    session.initialize(&transport, &config).unwrap();
    let initial = session.answer(anc);
    assert!(!initial.is_empty());

    let all: Vec<Tuple> = edges.iter().cloned().collect();
    let wipe = UpdateBatch {
        inserts: vec![],
        deletes: all.iter().map(|t| (edge, t.clone())).collect(),
    };
    let r = session.apply(&wipe, &transport, &config).unwrap();
    assert_eq!(r.rederive_seeds, 0, "nothing survives a total wipe");
    assert!(session.answer(anc).is_empty(), "view must collapse to empty");

    let restore = UpdateBatch {
        inserts: all.iter().map(|t| (edge, t.clone())).collect(),
        deletes: vec![],
    };
    session.apply(&restore, &transport, &config).unwrap();
    assert!(
        session.answer(anc).set_eq(&initial),
        "restoring the base must restore the exact initial view"
    );
}

